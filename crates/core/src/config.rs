//! Builders for the ASMCap and EDAM engines.

use crate::engine::{AsmcapEngine, EdamEngine};
use crate::hdac::{Hdac, HdacParams};
use crate::tasr::{Tasr, TasrParams};
use asmcap_circuit::params::{AsmcapParams, EdamParams};
use asmcap_circuit::{ChargeDomainCam, CurrentDomainCam, SenseAmp, VrefPolicy};
use asmcap_genome::ErrorProfile;

/// Non-consuming builder for [`AsmcapEngine`].
///
/// Defaults to the paper's configuration: published circuit parameters,
/// HDAC and TASR with paper constants, centred `V_ref`, seed 0.
///
/// # Examples
///
/// ```
/// use asmcap::{AsmcapConfig, HdacParams};
/// use asmcap_genome::ErrorProfile;
///
/// let engine = AsmcapConfig::new(ErrorProfile::condition_a())
///     .hdac(Some(HdacParams { alpha: 100.0, ..HdacParams::paper() }))
///     .tasr(None)
///     .seed(7)
///     .build();
/// assert_eq!(asmcap::AsmMatcher::name(&engine), "ASMCap w/ HDAC");
/// ```
#[derive(Debug, Clone)]
pub struct AsmcapConfig {
    profile: ErrorProfile,
    hdac: Option<HdacParams>,
    tasr: Option<TasrParams>,
    vref: VrefPolicy,
    params: AsmcapParams,
    seed: u64,
}

impl AsmcapConfig {
    /// Starts from the paper's defaults for an expected error profile. The
    /// profile parameterises the strategies (HDAC's `p`, TASR's `T_l`); in
    /// deployment it comes from sequencer specifications or error profiling.
    #[must_use]
    pub fn new(profile: ErrorProfile) -> Self {
        Self {
            profile,
            hdac: Some(HdacParams::paper()),
            tasr: Some(TasrParams::paper()),
            vref: VrefPolicy::Centered,
            params: AsmcapParams::paper(),
            seed: 0,
        }
    }

    /// Enables/disables HDAC (with parameters).
    pub fn hdac(&mut self, hdac: Option<HdacParams>) -> &mut Self {
        self.hdac = hdac;
        self
    }

    /// Enables/disables TASR (with parameters).
    pub fn tasr(&mut self, tasr: Option<TasrParams>) -> &mut Self {
        self.tasr = tasr;
        self
    }

    /// Overrides the `V_ref` placement policy.
    pub fn vref(&mut self, vref: VrefPolicy) -> &mut Self {
        self.vref = vref;
        self
    }

    /// Overrides the circuit parameters (e.g. for variation sweeps).
    pub fn circuit_params(&mut self, params: AsmcapParams) -> &mut Self {
        self.params = params;
        self
    }

    /// Sets the sensing-noise RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Builds the engine.
    #[must_use]
    pub fn build(&self) -> AsmcapEngine {
        let sense = SenseAmp::new(ChargeDomainCam::new(self.params.clone()), self.vref);
        let hdac = self.hdac.map(|p| Hdac::new(p, self.profile));
        let tasr = self.tasr.map(|p| Tasr::new(p, self.profile));
        AsmcapEngine::assemble(sense, hdac, tasr, self.seed)
    }
}

/// Non-consuming builder for [`EdamEngine`].
///
/// Defaults to the paper's EDAM baseline: published parameters, no sequence
/// rotation.
#[derive(Debug, Clone)]
pub struct EdamConfig {
    sr_rotations: Option<usize>,
    vref: VrefPolicy,
    params: EdamParams,
    seed: u64,
}

impl EdamConfig {
    /// Starts from the paper's EDAM baseline.
    #[must_use]
    pub fn new() -> Self {
        Self {
            sr_rotations: None,
            vref: VrefPolicy::Centered,
            params: EdamParams::paper(),
            seed: 0,
        }
    }

    /// Enables EDAM's plain (non-threshold-aware) sequence rotation.
    pub fn sequence_rotation(&mut self, rotations: Option<usize>) -> &mut Self {
        self.sr_rotations = rotations;
        self
    }

    /// Overrides the `V_ref` placement policy.
    pub fn vref(&mut self, vref: VrefPolicy) -> &mut Self {
        self.vref = vref;
        self
    }

    /// Overrides the circuit parameters.
    pub fn circuit_params(&mut self, params: EdamParams) -> &mut Self {
        self.params = params;
        self
    }

    /// Sets the sensing-noise RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Builds the engine.
    #[must_use]
    pub fn build(&self) -> EdamEngine {
        let sense = SenseAmp::new(CurrentDomainCam::new(self.params.clone()), self.vref);
        let sr = self.sr_rotations.map(|n| {
            Tasr::new(
                TasrParams::plain_sr(n),
                ErrorProfile::error_free(), // plain SR ignores the profile
            )
        });
        EdamEngine::assemble(sense, sr, self.seed)
    }
}

impl Default for EdamConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::AsmMatcher;

    #[test]
    fn defaults_build_the_paper_engine() {
        let engine = AsmcapConfig::new(ErrorProfile::condition_a()).build();
        assert_eq!(engine.name(), "ASMCap w/ H&T");
        assert!(engine.hdac_active(1));
        let edam = EdamConfig::new().build();
        assert_eq!(edam.name(), "EDAM");
    }

    #[test]
    fn builder_is_chainable_and_reusable() {
        let mut config = AsmcapConfig::new(ErrorProfile::condition_b());
        config.hdac(None).seed(3);
        let a = config.build();
        let b = config.build();
        assert_eq!(a.name(), b.name());
        assert_eq!(a.name(), "ASMCap w/ TASR");
    }

    #[test]
    fn edam_with_sr_is_labelled() {
        let mut config = EdamConfig::new();
        config.sequence_rotation(Some(2));
        assert_eq!(config.build().name(), "EDAM w/ SR");
    }
}
