//! # ASMCap
//!
//! A from-scratch reproduction of *“ASMCap: An Approximate String Matching
//! Accelerator for Genome Sequence Analysis Based on Capacitive Content
//! Addressable Memory”* (DAC 2023).
//!
//! ASMCap matches DNA reads against stored reference segments with the
//! neighbor-tolerant **ED\*** distance evaluated in one shot by a capacitive
//! multi-level CAM, and corrects ED\*'s two systematic misjudgments with
//! two hardware-friendly strategies:
//!
//! * [`hdac`] — **Hamming-Distance Aid Correction** for
//!   substitution-dominant edits (paper Algorithm 1);
//! * [`tasr`] — **Threshold-Aware Sequence Rotation** for consecutive
//!   indels (paper Algorithm 2).
//!
//! The crate exposes three levels of API:
//!
//! * [`matcher`] — the [`AsmMatcher`] trait plus reference matchers (exact
//!   edit distance, noiseless ED\*);
//! * [`engine`] — [`AsmcapEngine`] and [`EdamEngine`]: per-pair matchers
//!   with full analog sensing models, used by the accuracy evaluation;
//! * [`mapper`] — [`ReadMapper`]: the end-to-end path through the simulated
//!   512-array device, including instruction streams, cycle accounting, and
//!   energy.
//!
//! # Quickstart
//!
//! ```
//! use asmcap::{AsmcapEngine, AsmMatcher};
//! use asmcap_genome::{ErrorProfile, GenomeModel, ReadSampler};
//!
//! // A synthetic reference and a read with Condition-A errors.
//! let genome = GenomeModel::uniform().generate(10_000, 1);
//! let sampler = ReadSampler::new(256, ErrorProfile::condition_a());
//! let read = sampler.sample(&genome, 42);
//! let segment = read.aligned_segment(&genome);
//!
//! // The full ASMCap engine: charge-domain sensing + HDAC + TASR.
//! let mut engine = AsmcapEngine::paper(ErrorProfile::condition_a(), 7);
//! let outcome = engine.matches(segment.as_slice(), read.bases.as_slice(), 8);
//! assert!(outcome.matched);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod fragment;
pub mod hdac;
pub mod mapper;
pub mod matcher;
pub mod tasr;

pub use config::{AsmcapConfig, EdamConfig};
pub use engine::{AsmcapEngine, EdamEngine};
pub use fragment::{FragmentConfig, LongReadMapper, LongReadMapping};
pub use hdac::{Hdac, HdacParams};
pub use matcher::{AsmMatcher, ExactEdMatcher, MatchOutcome, NoiselessEdStarMatcher};
pub use mapper::{MappedRead, MapperConfig, ReadMapper};
pub use tasr::{RotationSchedule, Tasr, TasrParams};

/// Deterministic RNG shared across the workspace (ChaCha8).
pub type Rng = asmcap_circuit::Rng;

/// Creates the workspace-standard deterministic RNG from a `u64` seed.
pub fn rng(seed: u64) -> Rng {
    asmcap_circuit::rng(seed)
}
