//! # ASMCap
//!
//! A from-scratch reproduction of *“ASMCap: An Approximate String Matching
//! Accelerator for Genome Sequence Analysis Based on Capacitive Content
//! Addressable Memory”* (DAC 2023).
//!
//! ASMCap matches DNA reads against stored reference segments with the
//! neighbor-tolerant **ED\*** distance evaluated in one shot by a capacitive
//! multi-level CAM, and corrects ED\*'s two systematic misjudgments with
//! two hardware-friendly strategies:
//!
//! * [`hdac`] — **Hamming-Distance Aid Correction** for
//!   substitution-dominant edits (paper Algorithm 1);
//! * [`tasr`] — **Threshold-Aware Sequence Rotation** for consecutive
//!   indels (paper Algorithm 2).
//!
//! # The pipeline API
//!
//! The public mapping surface is one type: [`AsmcapPipeline`]. A builder
//! loads and segments the reference once, picks an execution backend, and
//! then maps single reads, batches (sharded across threads with
//! worker-count-independent results), or read streams — yielding
//! [`MapRecord`]s with per-read [`MapStatus`] and aggregated
//! [`PipelineStats`]:
//!
//! ```
//! use asmcap::{AsmcapPipeline, BackendKind, PipelineConfig};
//! use asmcap_genome::{ErrorProfile, GenomeModel, ReadSampler};
//!
//! // A synthetic reference and reads with Condition-A errors.
//! let genome = GenomeModel::uniform().generate(10_000, 1);
//! let sampler = ReadSampler::new(256, ErrorProfile::condition_a());
//! let reads: Vec<_> = sampler
//!     .sample_many(&genome, 4, 42)
//!     .into_iter()
//!     .map(|r| r.bases)
//!     .collect();
//!
//! // One pipeline: reference stored once, reads mapped in a batch.
//! let pipeline = AsmcapPipeline::builder()
//!     .reference(genome.clone())
//!     .config(PipelineConfig::paper(8, ErrorProfile::condition_a()))
//!     .backend(BackendKind::Device)
//!     .build()?;
//! for record in pipeline.map_batch(&reads) {
//!     assert!(record.status.is_mapped());
//! }
//! let stats = pipeline.stats();
//! assert_eq!(stats.mapped, 4);
//! # Ok::<(), asmcap::PipelineError>(())
//! ```
//!
//! Three [`backend`] implementations sit behind the [`MappingBackend`]
//! trait: [`DeviceBackend`] (the simulated 512-array device with full cycle
//! and energy accounting), [`PairBackend`] (the per-pair engine fast path
//! used by the accuracy sweeps), and [`SoftwareBackend`] (a noiseless ED\*
//! reference). Reads longer than the CAM row are handled by
//! [`LongReadMapper`], which fragments them over a pipeline and votes.
//!
//! The lower layers remain public for evaluation code: [`matcher`] (the
//! [`AsmMatcher`] trait and reference matchers), [`engine`]
//! ([`AsmcapEngine`] / [`EdamEngine`] per-pair engines), and the deprecated
//! device-level [`mapper::ReadMapper`] shim the pipeline replaces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod engine;
pub mod executor;
pub mod extension;
pub mod fragment;
pub mod hdac;
pub mod mapper;
pub mod matcher;
pub mod pipeline;
pub mod tasr;

pub use backend::{
    segment_count, segment_starts, BackendOutcome, DeviceBackend, MappingBackend, PairBackend,
    SoftwareBackend,
};
pub use config::{AsmcapConfig, EdamConfig};
pub use engine::{AsmcapEngine, EdamEngine};
pub use extension::ExtensionConfig;
pub use fragment::{FragmentConfig, LongReadMapper, LongReadMapping};
pub use hdac::{Hdac, HdacParams};
pub use mapper::{MappedRead, MapperConfig};
pub use matcher::{AsmMatcher, ExactEdMatcher, MatchOutcome, NoiselessEdStarMatcher};
pub use pipeline::{
    read_seed, AsmcapPipeline, BackendKind, MapRecord, MapStatus, PipelineBuilder, PipelineConfig,
    PipelineError, PipelineStats,
};
pub use tasr::{RotationSchedule, Tasr, TasrParams};

// The fault model lives in `asmcap-arch` (faults are a device artefact);
// re-exported here because the pipeline config embeds the plan.
pub use asmcap_arch::FaultPlan;

// The prefilter's types live in `asmcap-genome` (the index is a genome
// artefact, like the packing); re-exported here because the pipeline
// config embeds them.
pub use asmcap_genome::{PrefilterConfig, PrefilterError, PrefilterIndex, Shortlist};

// The alignment types live in `asmcap-metrics` (the traceback is a metric
// artefact, like the distances); re-exported here because `MapRecord`
// embeds them when the extension stage is armed.
pub use asmcap_metrics::{Alignment, Cigar};

#[allow(deprecated)]
pub use mapper::ReadMapper;

/// Deterministic RNG shared across the workspace (ChaCha8).
pub type Rng = asmcap_circuit::Rng;

/// Creates the workspace-standard deterministic RNG from a `u64` seed.
pub fn rng(seed: u64) -> Rng {
    asmcap_circuit::rng(seed)
}
