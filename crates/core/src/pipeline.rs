//! The batch-first mapping pipeline: one reference, one config, any number
//! of reads.
//!
//! [`AsmcapPipeline`] is the public entry point for read mapping. A builder
//! loads and segments the reference **once**, picks an execution backend
//! (see [`crate::backend`]), and then serves
//!
//! * [`AsmcapPipeline::map`] — one read;
//! * [`AsmcapPipeline::map_batch`] — a slice of reads, sharded across
//!   `std::thread::scope` workers;
//! * [`AsmcapPipeline::map_iter`] — a read stream, mapped chunk-by-chunk.
//!
//! Every read yields a [`MapRecord`] with a [`MapStatus`]
//! (mapped / unmapped / truncated / rejected), and the pipeline aggregates
//! [`PipelineStats`] (cycles, searches, energy, wall-clock) across all calls.
//!
//! # Determinism
//!
//! Results are **independent of the worker count**: the sensing seed of read
//! `i` is derived from the pipeline seed and the read's index via a
//! SplitMix64-style mix ([`read_seed`]), never from shared RNG state. Mapping
//! a batch with 1, 2, or 8 workers — or read-by-read through
//! [`AsmcapPipeline::map`] on a fresh pipeline — produces byte-identical
//! records. `tests/pipeline_api.rs` pins this rule.
//!
//! # Example
//!
//! ```
//! use asmcap::{AsmcapPipeline, PipelineConfig};
//! use asmcap_genome::GenomeModel;
//!
//! let genome = GenomeModel::uniform().generate(4_096, 1);
//! let pipeline = AsmcapPipeline::builder()
//!     .reference(genome.clone())
//!     .config(PipelineConfig {
//!         threshold: 2,
//!         row_width: 64,
//!         ..PipelineConfig::default()
//!     })
//!     .build()?;
//! let record = pipeline.map(&genome.window(777..841));
//! assert!(record.status.is_mapped());
//! assert!(record.positions.contains(&777));
//! # Ok::<(), asmcap::PipelineError>(())
//! ```

use crate::backend::{BackendOutcome, DeviceBackend, MappingBackend, PairBackend, SoftwareBackend};
use crate::extension::{ExtensionConfig, ExtensionStage};
use crate::hdac::HdacParams;
use crate::mapper::MapperConfig;
use crate::tasr::TasrParams;
use asmcap_arch::{DeviceBuilder, FaultPlan};
use asmcap_genome::{
    DnaSeq, ErrorProfile, PackedRef, PackedSeq, PrefilterConfig, PrefilterError, PrefilterIndex,
};
use asmcap_metrics::Alignment;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Everything a mapping run needs, in one place — the single config type
/// the CLI flags, the examples, and the library all share.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Edit-distance threshold `T`.
    pub threshold: usize,
    /// Expected error profile (parameterises HDAC and TASR).
    pub profile: ErrorProfile,
    /// HDAC parameters, or `None` to disable.
    pub hdac: Option<HdacParams>,
    /// TASR parameters, or `None` to disable.
    pub tasr: Option<TasrParams>,
    /// Reference segmentation stride (1 = every alignment offset).
    pub stride: usize,
    /// CAM row width = read length in bases.
    pub row_width: usize,
    /// Rows per simulated array (device backend geometry).
    pub rows_per_array: usize,
    /// Pipeline seed; per-read seeds derive from it (see [`read_seed`]).
    pub seed: u64,
    /// Seed-and-extend k-mer prefilter, or `None` (the default) to scan
    /// the full segment list per read. With `None` the pipeline is
    /// byte-identical to the pre-prefilter behaviour; with `Some` each
    /// read's candidates are shortlisted first and only those segments
    /// reach the matching kernels (recall pinned by
    /// `tests/prefilter_equivalence.rs`).
    pub prefilter: Option<PrefilterConfig>,
    /// Extension/alignment stage, or `None` (the default) to stop at
    /// candidate positions. With `Some` each record's best candidate
    /// origins are re-aligned with the banded bit-vector traceback and the
    /// winning [`Alignment`] is attached to the record. The stage is pure
    /// DP: arming it changes *only* [`MapRecord::alignment`] — every other
    /// field stays byte-identical to an extension-off run (pinned by
    /// `tests/packed_equivalence.rs`).
    pub extension: Option<ExtensionConfig>,
    /// Device fault-injection plan, or `None` (the default) for a pristine
    /// device. An **inactive** plan (e.g. [`FaultPlan::none`]) is treated
    /// exactly like `None` — nothing is installed and every result stays
    /// byte-identical. An active plan is only supported on
    /// [`BackendKind::Device`]; other backends fail the build with
    /// [`PipelineError::FaultUnsupported`]. Faults are installed **after**
    /// the reference is stored, then each array's self-test quarantine scan
    /// runs at the pipeline threshold (pinned by `tests/fault_injection.rs`
    /// and the fault pins in `tests/packed_equivalence.rs`).
    pub fault: Option<FaultPlan>,
}

impl Default for PipelineConfig {
    /// The defaults every entry point shares: `T = 8`, Condition-A profile,
    /// both strategies at paper constants, stride 1, 256-base rows in
    /// 256-row arrays, seed 0.
    fn default() -> Self {
        Self {
            threshold: 8,
            profile: ErrorProfile::condition_a(),
            hdac: Some(HdacParams::paper()),
            tasr: Some(TasrParams::paper()),
            stride: 1,
            row_width: 256,
            rows_per_array: 256,
            seed: 0,
            prefilter: None,
            extension: None,
            fault: None,
        }
    }
}

impl PipelineConfig {
    /// The paper's full strategy configuration at a threshold and profile.
    #[must_use]
    pub fn paper(threshold: usize, profile: ErrorProfile) -> Self {
        Self {
            threshold,
            profile,
            ..Self::default()
        }
    }

    /// Plain ED\* matching (no strategies) at a threshold.
    #[must_use]
    pub fn plain(threshold: usize) -> Self {
        Self {
            threshold,
            profile: ErrorProfile::error_free(),
            hdac: None,
            tasr: None,
            ..Self::default()
        }
    }

    /// The per-read matching slice of this config.
    #[must_use]
    pub fn mapper(&self) -> MapperConfig {
        MapperConfig {
            threshold: self.threshold,
            profile: self.profile,
            hdac: self.hdac,
            tasr: self.tasr,
        }
    }
}

/// Which execution engine the pipeline maps through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The simulated multi-array device (cycle + energy faithful).
    #[default]
    Device,
    /// The per-pair engine fast path (statistically equivalent sensing).
    Pair,
    /// The noiseless software ED\* reference.
    Software,
}

impl BackendKind {
    /// Parses a CLI-style backend name.
    ///
    /// # Errors
    ///
    /// Returns the offending string for anything but
    /// `device`/`pair`/`software`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "device" => Ok(Self::Device),
            "pair" => Ok(Self::Pair),
            "software" => Ok(Self::Software),
            other => Err(format!(
                "unknown backend '{other}' (use device, pair, or software)"
            )),
        }
    }
}

/// Why a pipeline could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// No reference was supplied to the builder.
    MissingReference,
    /// The reference is shorter than one CAM row.
    ReferenceTooShort {
        /// Reference length in bases.
        reference: usize,
        /// Configured row width.
        row_width: usize,
    },
    /// The segmentation stride is zero.
    ZeroStride,
    /// The prefilter configuration is unusable (k-mer length outside
    /// `1..=32`, zero minimizer window, or zero candidate cap).
    BadPrefilter(PrefilterError),
    /// The segmented reference does not fit the device.
    Capacity(asmcap_arch::CapacityError),
    /// An active fault plan was configured on a backend without a device
    /// to inject faults into (only [`BackendKind::Device`] supports it).
    FaultUnsupported {
        /// Display name of the backend that cannot host the plan.
        backend: &'static str,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::MissingReference => {
                write!(f, "pipeline builder needs a reference sequence")
            }
            PipelineError::ReferenceTooShort {
                reference,
                row_width,
            } => write!(
                f,
                "reference of {reference} bases is shorter than one {row_width}-base row"
            ),
            PipelineError::ZeroStride => write!(f, "segmentation stride must be positive"),
            PipelineError::BadPrefilter(e) => write!(f, "bad prefilter configuration: {e}"),
            PipelineError::Capacity(e) => write!(f, "{e}"),
            PipelineError::FaultUnsupported { backend } => write!(
                f,
                "fault injection requires the device backend ('{backend}' cannot host a fault plan)"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Per-read outcome classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapStatus {
    /// At least one candidate position was found.
    Mapped,
    /// The read was searched but matched nothing.
    Unmapped,
    /// The read was longer than the row width and its prefix was mapped
    /// (candidates, if any, are in [`MapRecord::positions`]).
    Truncated,
    /// The read was shorter than the row width and could not be searched.
    Rejected,
}

impl MapStatus {
    /// Whether the status is exactly [`MapStatus::Mapped`] — a full-width
    /// read with candidates. A `Truncated` read can also carry candidates;
    /// use [`MapRecord::has_candidates`] when that is the question.
    #[must_use]
    pub fn is_mapped(self) -> bool {
        matches!(self, MapStatus::Mapped)
    }
}

impl fmt::Display for MapStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            MapStatus::Mapped => "mapped",
            MapStatus::Unmapped => "unmapped",
            MapStatus::Truncated => "truncated",
            MapStatus::Rejected => "rejected",
        };
        write!(f, "{label}")
    }
}

/// The structured result of mapping one read.
#[derive(Debug, Clone, PartialEq)]
pub struct MapRecord {
    /// Zero-based read index within this pipeline's lifetime (batch order).
    pub index: u64,
    /// Outcome classification.
    pub status: MapStatus,
    /// Candidate reference positions, ascending. Empty unless candidates
    /// were found (a `Truncated` read can still carry candidates for its
    /// mapped prefix).
    pub positions: Vec<usize>,
    /// Cycles this read consumed.
    pub cycles: u64,
    /// Search operations this read issued.
    pub searches: u64,
    /// Energy this read consumed, in joules.
    pub energy_j: f64,
    /// Best candidate alignment (origin, score, CIGAR), present only when
    /// the extension stage is armed and a candidate aligned within the
    /// band. Always `None` with extension off.
    pub alignment: Option<Alignment>,
    /// Rows where re-sense majority voting fired for this read (0 without
    /// fault injection).
    pub resensed: u64,
    /// Quarantined rows answered by the exact digital fallback for this
    /// read (0 without fault injection).
    pub requarried: u64,
    /// Whether any fault mitigation fired for this read
    /// (`resensed + requarried > 0`) — the read completed, but through a
    /// degraded path.
    pub degraded: bool,
}

impl MapRecord {
    /// Whether any candidate positions were produced — true for `Mapped`
    /// reads and for `Truncated` reads whose searched prefix matched.
    #[must_use]
    pub fn has_candidates(&self) -> bool {
        !self.positions.is_empty()
    }
}

/// Aggregated statistics across everything a pipeline has mapped.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineStats {
    /// Reads processed in total.
    pub reads: u64,
    /// Reads with at least one candidate (status `Mapped`).
    pub mapped: u64,
    /// Reads searched but unmatched.
    pub unmapped: u64,
    /// Reads truncated to the row width before searching.
    pub truncated: u64,
    /// Reads rejected as shorter than the row width.
    pub rejected: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Total search operations.
    pub searches: u64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Reads that received an alignment from the extension stage (always
    /// zero with extension off).
    pub aligned: u64,
    /// Reads that completed through a degraded path (any mitigation
    /// fired; always zero without fault injection).
    pub degraded: u64,
    /// Total re-sense voting events across all reads.
    pub resensed: u64,
    /// Total quarantined-row digital fallbacks across all reads.
    pub requarried: u64,
    /// Host wall-clock spent inside `map`/`map_batch`, in seconds.
    pub wall_s: f64,
}

impl PipelineStats {
    fn absorb(&mut self, record: &MapRecord) {
        self.reads += 1;
        match record.status {
            MapStatus::Mapped => self.mapped += 1,
            MapStatus::Unmapped => self.unmapped += 1,
            MapStatus::Truncated => self.truncated += 1,
            MapStatus::Rejected => self.rejected += 1,
        }
        self.cycles += record.cycles;
        self.searches += record.searches;
        self.energy_j += record.energy_j;
        if record.alignment.is_some() {
            self.aligned += 1;
        }
        self.degraded += u64::from(record.degraded);
        self.resensed += record.resensed;
        self.requarried += record.requarried;
    }
}

/// The sensing seed for read `index` under pipeline seed `seed`.
///
/// A SplitMix64-style mix — this is the pipeline's documented determinism
/// rule: read `i` always draws the same noise, whether it is mapped alone,
/// in a batch of a thousand, or on any worker thread.
#[must_use]
pub fn read_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builder for [`AsmcapPipeline`]. Obtain via [`AsmcapPipeline::builder`].
pub struct PipelineBuilder {
    reference: Option<DnaSeq>,
    config: PipelineConfig,
    kind: BackendKind,
    custom: Option<Box<dyn MappingBackend>>,
    workers: Option<usize>,
}

impl fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("reference_len", &self.reference.as_ref().map(DnaSeq::len))
            .field("config", &self.config)
            .field("kind", &self.kind)
            .field("custom", &self.custom.as_ref().map(|b| b.name()))
            .field("workers", &self.workers)
            .finish()
    }
}

impl PipelineBuilder {
    fn new() -> Self {
        Self {
            reference: None,
            config: PipelineConfig::default(),
            kind: BackendKind::default(),
            custom: None,
            workers: None,
        }
    }

    /// The reference sequence to segment and store.
    #[must_use]
    pub fn reference(mut self, reference: DnaSeq) -> Self {
        self.reference = Some(reference);
        self
    }

    /// The full pipeline configuration.
    #[must_use]
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Which built-in backend to execute on (default: [`BackendKind::Device`]).
    #[must_use]
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.kind = kind;
        self
    }

    /// Arms the seed-and-extend k-mer prefilter: each read is shortlisted
    /// against a [`asmcap_genome::PrefilterIndex`] built over the packed
    /// reference at [`PipelineBuilder::build`] time, and only shortlisted
    /// segments reach the matching kernels (on the device backend, only
    /// shortlisted rows are sensed). Equivalent to setting
    /// [`PipelineConfig::prefilter`].
    ///
    /// # Examples
    ///
    /// ```
    /// use asmcap::{AsmcapPipeline, PipelineConfig};
    /// use asmcap_genome::{GenomeModel, PrefilterConfig};
    ///
    /// let genome = GenomeModel::uniform().generate(8_192, 1);
    /// let pipeline = AsmcapPipeline::builder()
    ///     .reference(genome.clone())
    ///     .config(PipelineConfig {
    ///         threshold: 2,
    ///         row_width: 128,
    ///         ..PipelineConfig::default()
    ///     })
    ///     .prefilter(PrefilterConfig::default())
    ///     .build()?;
    /// let record = pipeline.map(&genome.window(700..828));
    /// assert!(record.positions.contains(&700));
    /// # Ok::<(), asmcap::PipelineError>(())
    /// ```
    #[must_use]
    pub fn prefilter(mut self, prefilter: PrefilterConfig) -> Self {
        self.config.prefilter = Some(prefilter);
        self
    }

    /// Arms the extension/alignment stage: after the matching kernels,
    /// each record's best candidate origins are re-aligned against the
    /// packed reference with the GenASM-style banded bit-vector traceback
    /// and the winning [`Alignment`] is attached to the record. Equivalent
    /// to setting [`PipelineConfig::extension`].
    ///
    /// # Examples
    ///
    /// ```
    /// use asmcap::{AsmcapPipeline, ExtensionConfig, PipelineConfig};
    /// use asmcap_genome::GenomeModel;
    ///
    /// let genome = GenomeModel::uniform().generate(4_096, 1);
    /// let pipeline = AsmcapPipeline::builder()
    ///     .reference(genome.clone())
    ///     .config(PipelineConfig {
    ///         threshold: 2,
    ///         row_width: 64,
    ///         ..PipelineConfig::default()
    ///     })
    ///     .extension(ExtensionConfig::default())
    ///     .build()?;
    /// let record = pipeline.map(&genome.window(777..841));
    /// let alignment = record.alignment.expect("exact window aligns");
    /// assert_eq!(alignment.origin, 777);
    /// assert_eq!(alignment.score, 0);
    /// assert_eq!(alignment.cigar.to_string(), "64=");
    /// # Ok::<(), asmcap::PipelineError>(())
    /// ```
    #[must_use]
    pub fn extension(mut self, extension: ExtensionConfig) -> Self {
        self.config.extension = Some(extension);
        self
    }

    /// Arms seeded device fault injection ([`FaultPlan`]). Only the
    /// [`BackendKind::Device`] backend can host a plan; building any other
    /// backend with an active plan fails with
    /// [`PipelineError::FaultUnsupported`]. An inactive plan (all rates
    /// zero, e.g. [`FaultPlan::none`]) is equivalent to not calling this.
    #[must_use]
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.config.fault = Some(plan);
        self
    }

    /// A user-supplied backend, overriding [`PipelineBuilder::backend`].
    /// The backend's row width replaces the configured one.
    #[must_use]
    pub fn custom_backend(mut self, backend: impl MappingBackend + 'static) -> Self {
        self.custom = Some(Box::new(backend));
        self
    }

    /// Worker threads for [`AsmcapPipeline::map_batch`] (default: available
    /// parallelism, capped at 8). Worker count never changes results.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Loads/segments the reference and assembles the pipeline.
    ///
    /// # Errors
    ///
    /// [`PipelineError::MissingReference`] without a reference (unless a
    /// custom backend was supplied), [`PipelineError::ReferenceTooShort`] /
    /// [`PipelineError::ZeroStride`] for degenerate geometry, and
    /// [`PipelineError::Capacity`] if the device cannot hold the segments.
    pub fn build(self) -> Result<AsmcapPipeline, PipelineError> {
        let config = self.config;
        // The one validation rule both branches share: a reference must
        // exist, segment on a positive stride, and hold at least one row.
        let validate = |reference: Option<&DnaSeq>, width: usize| -> Result<(), PipelineError> {
            let reference = reference.ok_or(PipelineError::MissingReference)?;
            if config.stride == 0 {
                return Err(PipelineError::ZeroStride);
            }
            if reference.len() < width {
                return Err(PipelineError::ReferenceTooShort {
                    reference: reference.len(),
                    row_width: width,
                });
            }
            Ok(())
        };
        // Builds the prefilter index over the packed reference (shared
        // segmentation rule: `width`-base segments every `stride` bases).
        let build_prefilter = |reference: &DnaSeq,
                               width: usize|
         -> Result<Option<PrefilterIndex>, PipelineError> {
            config
                .prefilter
                .map(|prefilter| {
                    PrefilterIndex::new(&PackedRef::new(reference), width, config.stride, prefilter)
                        .map_err(PipelineError::BadPrefilter)
                })
                .transpose()
        };
        // Builds the extension stage over the same packed reference; the
        // band derives from the threshold unless set explicitly.
        let build_extension = |reference: &DnaSeq, width: usize| -> Option<ExtensionStage> {
            config
                .extension
                .map(|extension| ExtensionStage::new(reference, width, config.threshold, extension))
        };
        // An active fault plan needs a simulated device to inject into.
        let fault_active = config.fault.as_ref().is_some_and(FaultPlan::is_active);
        let mut quarantined = 0usize;
        let (backend, prefilter, extension): (
            Box<dyn MappingBackend>,
            Option<PrefilterIndex>,
            Option<ExtensionStage>,
        ) = if let Some(custom) = self.custom {
            if fault_active {
                return Err(PipelineError::FaultUnsupported {
                    backend: custom.name(),
                });
            }
            let width = custom.row_width();
            // Both optional stages need the reference; a custom backend
            // alone does not.
            let (prefilter, extension) = if config.prefilter.is_some() || config.extension.is_some()
            {
                validate(self.reference.as_ref(), width)?;
                let reference = self.reference.as_ref().expect("validated above");
                (
                    build_prefilter(reference, width)?,
                    build_extension(reference, width),
                )
            } else {
                (None, None)
            };
            (custom, prefilter, extension)
        } else {
            validate(self.reference.as_ref(), config.row_width)?;
            let reference = self.reference.expect("validated above");
            let prefilter = build_prefilter(&reference, config.row_width)?;
            let extension = build_extension(&reference, config.row_width);
            let backend: Box<dyn MappingBackend> = match self.kind {
                BackendKind::Device => {
                    let rows = crate::backend::segment_count(
                        reference.len(),
                        config.row_width,
                        config.stride,
                    );
                    let mut device = DeviceBuilder::new()
                        .arrays(rows.div_ceil(config.rows_per_array))
                        .rows_per_array(config.rows_per_array)
                        .row_width(config.row_width)
                        .build_asmcap();
                    device
                        .store_reference(&reference, config.stride)
                        .map_err(PipelineError::Capacity)?;
                    let mut backend = DeviceBackend::new(device, config.mapper());
                    if let Some(plan) = &config.fault {
                        // Install after the reference is stored, so faults
                        // land on occupied rows and the self-test scan sees
                        // the real stored words. An inactive plan is a
                        // no-op by construction.
                        backend.install_fault_plan(plan);
                        quarantined = backend.quarantined_rows();
                    }
                    Box::new(backend)
                }
                BackendKind::Pair => {
                    if fault_active {
                        return Err(PipelineError::FaultUnsupported { backend: "pair" });
                    }
                    Box::new(PairBackend::new(
                        reference,
                        config.stride,
                        config.row_width,
                        config.mapper(),
                    ))
                }
                BackendKind::Software => {
                    if fault_active {
                        return Err(PipelineError::FaultUnsupported {
                            backend: "software",
                        });
                    }
                    Box::new(SoftwareBackend::new(
                        reference,
                        config.stride,
                        config.row_width,
                        config.threshold,
                    ))
                }
            };
            (backend, prefilter, extension)
        };
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8)
        });
        Ok(AsmcapPipeline {
            width: backend.row_width(),
            backend,
            prefilter,
            extension,
            workers,
            seed: config.seed,
            fault_armed: fault_active,
            quarantined,
            counter: AtomicU64::new(0),
            stats: Mutex::new(PipelineStats::default()),
        })
    }
}

/// The batch-first mapping pipeline. See the [module docs](self) for the
/// API shape and determinism rule, and [`AsmcapPipeline::builder`] to
/// construct one.
pub struct AsmcapPipeline {
    backend: Box<dyn MappingBackend>,
    prefilter: Option<PrefilterIndex>,
    extension: Option<ExtensionStage>,
    width: usize,
    workers: usize,
    seed: u64,
    fault_armed: bool,
    quarantined: usize,
    counter: AtomicU64,
    stats: Mutex<PipelineStats>,
}

impl fmt::Debug for AsmcapPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsmcapPipeline")
            .field("backend", &self.backend.name())
            .field("prefilter", &self.prefilter.as_ref().map(PrefilterIndex::k))
            .field(
                "extension",
                &self.extension.as_ref().map(ExtensionStage::band),
            )
            .field("row_width", &self.width)
            .field("workers", &self.workers)
            .field("seed", &self.seed)
            .finish()
    }
}

impl AsmcapPipeline {
    /// Starts building a pipeline.
    #[must_use]
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::new()
    }

    /// Row width (= read length) in bases.
    #[must_use]
    pub fn row_width(&self) -> usize {
        self.width
    }

    /// The active backend's display name.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Worker threads used by [`AsmcapPipeline::map_batch`].
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The armed prefilter index, or `None` when every read takes the
    /// full scan.
    #[must_use]
    pub fn prefilter(&self) -> Option<&PrefilterIndex> {
        self.prefilter.as_ref()
    }

    /// Whether the extension/alignment stage is armed.
    #[must_use]
    pub fn extension_armed(&self) -> bool {
        self.extension.is_some()
    }

    /// Whether an active fault plan is installed on the device.
    #[must_use]
    pub fn fault_armed(&self) -> bool {
        self.fault_armed
    }

    /// Rows quarantined by the install-time self-test scan. Zero when no
    /// fault plan is armed; static after build.
    #[must_use]
    pub fn quarantined_rows(&self) -> usize {
        self.quarantined
    }

    /// Aggregated statistics across everything mapped so far.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the stats lock.
    #[must_use]
    pub fn stats(&self) -> PipelineStats {
        *self.stats.lock().expect("stats lock poisoned")
    }

    /// Resets the aggregated statistics (the read-index counter keeps
    /// running so determinism is preserved).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the stats lock.
    pub fn reset_stats(&self) {
        *self.stats.lock().expect("stats lock poisoned") = PipelineStats::default();
    }

    /// Read `read`'s prefilter shortlist, or `None` for a full scan (no
    /// prefilter armed, or the shortlist's fallback fired) — the one
    /// shortlist rule the per-read and batch dispatch paths share.
    fn shortlist_for(&self, read: &PackedSeq) -> Option<Vec<usize>> {
        self.prefilter.as_ref().and_then(|prefilter| {
            let shortlist = prefilter.shortlist(read);
            if shortlist.is_full_scan() {
                None
            } else {
                Some(shortlist.starts_ascending())
            }
        })
    }

    /// The per-read backend dispatch: full scan when no prefilter is
    /// armed (or when the shortlist's fallback fires), shortlist-only
    /// otherwise. `read` is already exactly one row wide here.
    fn dispatch(&self, read: &PackedSeq, seed: u64) -> BackendOutcome {
        match self.shortlist_for(read) {
            None => self.backend.map_packed(read, seed),
            Some(candidates) => self.backend.map_shortlisted(read, seed, &candidates),
        }
    }

    /// Maps one executor tile through the backend's batch entry point
    /// ([`MappingBackend::map_batch_shortlisted`]): statuses and truncation
    /// are resolved here, shortlists are computed per read, and the
    /// searchable remainder drains through the backend in one call — on
    /// the device backend that is the array-by-array batched sensing pass.
    /// Byte-identical to mapping each read through [`AsmcapPipeline::map`]
    /// (pinned by `tests/packed_equivalence.rs` / `tests/pipeline_api.rs`).
    fn map_tile(&self, reads: &[PackedSeq], indices: &[u64]) -> Vec<MapRecord> {
        debug_assert_eq!(reads.len(), indices.len());
        let mut searchable: Vec<PackedSeq> = Vec::with_capacity(reads.len());
        let mut seeds: Vec<u64> = Vec::with_capacity(reads.len());
        let mut shortlists: Vec<Option<Vec<usize>>> = Vec::with_capacity(reads.len());
        // `None` = rejected (too short, never reaches the backend);
        // `Some(())` slots consume backend outcomes in input order.
        let mut searched: Vec<bool> = Vec::with_capacity(reads.len());
        for (read, &index) in reads.iter().zip(indices) {
            if read.len() < self.width {
                searched.push(false);
                continue;
            }
            let query = if read.len() > self.width {
                read.window(0..self.width)
            } else {
                read.clone()
            };
            seeds.push(read_seed(self.seed, index));
            shortlists.push(self.shortlist_for(&query));
            searchable.push(query);
            searched.push(true);
        }
        let outcomes = if searchable.is_empty() {
            Vec::new()
        } else {
            self.backend
                .map_batch_shortlisted(&searchable, &seeds, &shortlists)
        };
        let mut outcomes = outcomes.into_iter();
        let mut queries = searchable.iter();
        reads
            .iter()
            .zip(indices)
            .zip(searched)
            .map(|((read, &index), searched)| {
                if !searched {
                    return MapRecord {
                        index,
                        status: MapStatus::Rejected,
                        positions: Vec::new(),
                        cycles: 0,
                        searches: 0,
                        energy_j: 0.0,
                        alignment: None,
                        resensed: 0,
                        requarried: 0,
                        degraded: false,
                    };
                }
                let outcome = outcomes
                    .next()
                    .expect("one backend outcome per searchable read");
                let query = queries.next().expect("one query per searchable read");
                let status = if read.len() > self.width {
                    MapStatus::Truncated
                } else if outcome.positions.is_empty() {
                    MapStatus::Unmapped
                } else {
                    MapStatus::Mapped
                };
                let alignment = self
                    .extension
                    .as_ref()
                    .and_then(|stage| stage.extend(query, &outcome.positions));
                MapRecord {
                    index,
                    status,
                    positions: outcome.positions,
                    cycles: outcome.cycles,
                    searches: outcome.searches,
                    energy_j: outcome.energy_j,
                    alignment,
                    resensed: outcome.resensed,
                    requarried: outcome.requarried,
                    degraded: outcome.resensed + outcome.requarried > 0,
                }
            })
            .collect()
    }

    fn map_indexed(&self, read: &PackedSeq, index: u64) -> MapRecord {
        if read.len() < self.width {
            return MapRecord {
                index,
                status: MapStatus::Rejected,
                positions: Vec::new(),
                cycles: 0,
                searches: 0,
                energy_j: 0.0,
                alignment: None,
                resensed: 0,
                requarried: 0,
                degraded: false,
            };
        }
        let truncated = read.len() > self.width;
        let seed = read_seed(self.seed, index);
        let prefix = (read.len() > self.width).then(|| read.window(0..self.width));
        let query: &PackedSeq = prefix.as_ref().unwrap_or(read);
        let outcome: BackendOutcome = self.dispatch(query, seed);
        let status = if truncated {
            MapStatus::Truncated
        } else if outcome.positions.is_empty() {
            MapStatus::Unmapped
        } else {
            MapStatus::Mapped
        };
        let alignment = self
            .extension
            .as_ref()
            .and_then(|stage| stage.extend(query, &outcome.positions));
        MapRecord {
            index,
            status,
            positions: outcome.positions,
            cycles: outcome.cycles,
            searches: outcome.searches,
            energy_j: outcome.energy_j,
            alignment,
            resensed: outcome.resensed,
            requarried: outcome.requarried,
            degraded: outcome.resensed + outcome.requarried > 0,
        }
    }

    /// Maps one read.
    ///
    /// Reads longer than the row width are truncated to it (status
    /// [`MapStatus::Truncated`]); shorter reads are not searched at all
    /// (status [`MapStatus::Rejected`]).
    pub fn map(&self, read: &DnaSeq) -> MapRecord {
        self.map_packed(&PackedSeq::from_seq(read))
    }

    /// [`AsmcapPipeline::map`] over an already packed read — the zero-repack
    /// entry point for callers that hold packed data (e.g. the long-read
    /// fragmenter).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the stats lock.
    pub fn map_packed(&self, read: &PackedSeq) -> MapRecord {
        // lint: timing-ok — wall_s is a stats field; decisions never read it.
        let start = Instant::now();
        // lint: relaxed-ok — a fresh-index ticket; no memory is published.
        let index = self.counter.fetch_add(1, Ordering::Relaxed);
        let record = self.map_indexed(read, index);
        let mut stats = self.stats.lock().expect("stats lock poisoned");
        stats.absorb(&record);
        stats.wall_s += start.elapsed().as_secs_f64();
        record
    }

    /// Maps a batch of reads across up to [`AsmcapPipeline::workers`]
    /// scoped threads through the work-stealing tile executor
    /// ([`crate::executor`]): the batch is cut into fixed-size tiles and
    /// workers claim tiles off a shared atomic queue, so a few expensive
    /// reads (a skewed prefilter shortlist, a full-scan fallback) no longer
    /// serialize the batch on one worker.
    ///
    /// Each read is packed once here; everything downstream runs
    /// word-parallel. Records come back in input order and are
    /// byte-identical for every worker count (see the [module docs](self)
    /// determinism rule).
    ///
    /// # Panics
    ///
    /// Propagates panics from worker threads (a panicking backend).
    pub fn map_batch(&self, reads: &[DnaSeq]) -> Vec<MapRecord> {
        let packed: Vec<PackedSeq> = reads.iter().map(PackedSeq::from_seq).collect();
        self.map_batch_packed(&packed)
    }

    /// [`AsmcapPipeline::map_batch`] over already packed reads. Each
    /// executor tile drains through the backend's batch entry point
    /// ([`MappingBackend::map_batch_shortlisted`]), so on the device
    /// backend a whole tile's searches run array-by-array through
    /// [`asmcap_arch::AsmcapDevice::search_packed_batch`] — and the
    /// records stay byte-identical to per-read dispatch.
    ///
    /// # Panics
    ///
    /// Propagates panics from worker threads (a panicking backend).
    pub fn map_batch_packed(&self, reads: &[PackedSeq]) -> Vec<MapRecord> {
        let base = self
            .counter
            .fetch_add(reads.len() as u64, Ordering::Relaxed); // lint: relaxed-ok — index ticket only
        self.map_batch_with(reads, &|i| base + i as u64)
    }

    /// [`AsmcapPipeline::map_batch_packed`] with **explicit per-read
    /// indices**: read `i` is mapped as read index `indices[i]`, so its
    /// sensing seed is [`read_seed`]`(pipeline_seed, indices[i])` and its
    /// record carries that index. The pipeline's running read counter is
    /// not consumed.
    ///
    /// This is the entry point for callers whose determinism key is not
    /// arrival order: `asmcap-serve` derives each request's index from the
    /// client-supplied request id, so the same request set produces the
    /// same records under any interleaving, batch assembly, or worker
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `reads` and `indices` lengths differ; propagates panics
    /// from worker threads (a panicking backend).
    pub fn map_batch_packed_indexed(&self, reads: &[PackedSeq], indices: &[u64]) -> Vec<MapRecord> {
        assert_eq!(
            reads.len(),
            indices.len(),
            "one explicit index per batched read"
        );
        self.map_batch_with(reads, &|i| indices[i])
    }

    /// The shared batch body: tile the index space, drain each tile
    /// through [`AsmcapPipeline::map_tile`] on the work-stealing executor,
    /// absorb stats.
    fn map_batch_with(
        &self,
        reads: &[PackedSeq],
        index_of: &(dyn Fn(usize) -> u64 + Sync),
    ) -> Vec<MapRecord> {
        // lint: timing-ok — wall_s is a stats field; decisions never read it.
        let start = Instant::now();
        let records = crate::executor::run_tiled(reads.len(), self.workers, |tile| {
            let indices: Vec<u64> = tile.clone().map(index_of).collect();
            self.map_tile(&reads[tile], &indices)
        });
        let mut stats = self.stats.lock().expect("stats lock poisoned");
        for record in &records {
            stats.absorb(record);
        }
        stats.wall_s += start.elapsed().as_secs_f64();
        records
    }

    /// Maps a read stream lazily: reads are pulled in chunks sized from the
    /// executor tile ([`crate::executor::TILE`] per worker — enough to keep
    /// every worker's queue non-empty without buffering hundreds of reads
    /// ahead of the consumer), each chunk goes through
    /// [`AsmcapPipeline::map_batch`], and records are yielded in input
    /// order. A partial tail chunk (stream ends mid-chunk) is flushed
    /// immediately rather than waiting for a full chunk.
    ///
    /// # Why there is no flush timeout here
    ///
    /// `asmcap-serve`'s coalescer flushes a partial batch after a deadline
    /// because its requests arrive **asynchronously** — a half-full batch
    /// might stay half-full forever while clients are idle. `map_iter`'s
    /// source is a synchronous iterator: `next()` either yields a read or
    /// ends the stream, so a chunk fills as fast as the source can produce
    /// and the tail flushes the moment the source is exhausted — there is
    /// no idle waiting a timeout could cut short. The one stall mode left
    /// is a source that itself *blocks* inside `next()` (e.g. an iterator
    /// over a channel): time-based flushing cannot be bolted on here
    /// without threads, so such callers should either shrink the chunk
    /// ([`MapIter::with_chunk`], down to 1 for read-at-a-time latency) or
    /// use `asmcap-serve`'s coalescer, which exists precisely for
    /// asynchronous arrivals.
    pub fn map_iter<I>(&self, reads: I) -> MapIter<'_, I::IntoIter>
    where
        I: IntoIterator<Item = DnaSeq>,
    {
        MapIter {
            pipeline: self,
            reads: reads.into_iter(),
            chunk: (self.workers * crate::executor::TILE).max(1),
            buffered: VecDeque::new(),
        }
    }
}

/// Streaming adapter returned by [`AsmcapPipeline::map_iter`].
#[derive(Debug)]
pub struct MapIter<'p, I> {
    pipeline: &'p AsmcapPipeline,
    reads: I,
    chunk: usize,
    buffered: VecDeque<MapRecord>,
}

impl<I> MapIter<'_, I> {
    /// Overrides the pull-chunk size (clamped to at least 1). Smaller
    /// chunks trade batching efficiency for lower latency against sources
    /// that block inside `next()`; `with_chunk(1)` maps read-at-a-time.
    /// Results are chunk-size-independent (the per-read seed depends only
    /// on the read's index — see the [module docs](self)).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }
}

impl<I: Iterator<Item = DnaSeq>> Iterator for MapIter<'_, I> {
    type Item = MapRecord;

    fn next(&mut self) -> Option<MapRecord> {
        if self.buffered.is_empty() {
            let batch: Vec<DnaSeq> = self.reads.by_ref().take(self.chunk).collect();
            if batch.is_empty() {
                return None;
            }
            self.buffered = self.pipeline.map_batch(&batch).into();
        }
        self.buffered.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::GenomeModel;

    fn pipeline(workers: usize) -> (AsmcapPipeline, DnaSeq) {
        let genome = GenomeModel::uniform().generate(2_048, 3);
        let pipeline = AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(PipelineConfig {
                threshold: 2,
                row_width: 64,
                ..PipelineConfig::default()
            })
            .workers(workers)
            .build()
            .unwrap();
        (pipeline, genome)
    }

    #[test]
    fn build_validates_inputs() {
        assert!(matches!(
            AsmcapPipeline::builder().build(),
            Err(PipelineError::MissingReference)
        ));
        let genome = GenomeModel::uniform().generate(100, 1);
        let err = AsmcapPipeline::builder()
            .reference(genome.clone())
            .build()
            .unwrap_err();
        assert!(matches!(err, PipelineError::ReferenceTooShort { .. }));
        let err = AsmcapPipeline::builder()
            .reference(genome)
            .config(PipelineConfig {
                row_width: 64,
                stride: 0,
                ..PipelineConfig::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(err, PipelineError::ZeroStride);
    }

    #[test]
    fn bad_prefilter_k_is_a_typed_error() {
        use asmcap_genome::{KmerError, PrefilterConfig, PrefilterError};
        let genome = GenomeModel::uniform().generate(2_048, 9);
        let build_with = |prefilter: PrefilterConfig| {
            AsmcapPipeline::builder()
                .reference(genome.clone())
                .config(PipelineConfig {
                    threshold: 2,
                    row_width: 64,
                    ..PipelineConfig::default()
                })
                .prefilter(prefilter)
                .build()
        };
        for k in [0usize, 33] {
            let err = build_with(PrefilterConfig {
                k,
                ..PrefilterConfig::default()
            })
            .unwrap_err();
            assert_eq!(
                err,
                PipelineError::BadPrefilter(PrefilterError::BadK(KmerError { k }))
            );
            assert!(err.to_string().contains("1..=32"), "{err}");
        }
        // Degenerate windows and caps are errors too, not panics.
        assert_eq!(
            build_with(PrefilterConfig {
                window: 0,
                ..PrefilterConfig::default()
            })
            .unwrap_err(),
            PipelineError::BadPrefilter(PrefilterError::ZeroWindow)
        );
        assert_eq!(
            build_with(PrefilterConfig {
                max_candidates: 0,
                ..PrefilterConfig::default()
            })
            .unwrap_err(),
            PipelineError::BadPrefilter(PrefilterError::ZeroCandidateCap)
        );
        // The k = 32 boundary builds (and still maps).
        let pipeline = AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(PipelineConfig {
                threshold: 2,
                row_width: 64,
                ..PipelineConfig::default()
            })
            .prefilter(PrefilterConfig {
                k: 32,
                ..PrefilterConfig::default()
            })
            .build()
            .unwrap();
        assert_eq!(pipeline.prefilter().unwrap().k(), 32);
        let record = pipeline.map(&genome.window(500..564));
        assert!(record.positions.contains(&500));
    }

    #[test]
    fn prefilter_with_custom_backend_needs_a_reference() {
        use asmcap_genome::PrefilterConfig;
        struct Always;
        impl crate::MappingBackend for Always {
            fn name(&self) -> &'static str {
                "always"
            }
            fn row_width(&self) -> usize {
                64
            }
            fn map_seeded(&self, _read: &DnaSeq, _seed: u64) -> BackendOutcome {
                BackendOutcome {
                    positions: vec![0],
                    cycles: 2,
                    searches: 1,
                    energy_j: 0.0,
                    ..BackendOutcome::default()
                }
            }
        }
        let err = AsmcapPipeline::builder()
            .custom_backend(Always)
            .prefilter(PrefilterConfig::default())
            .build()
            .unwrap_err();
        assert_eq!(err, PipelineError::MissingReference);
        // With a reference, the prefilter shortlists for the custom
        // backend too (its default map_shortlisted ignores the hint).
        let genome = GenomeModel::uniform().generate(2_048, 10);
        let pipeline = AsmcapPipeline::builder()
            .reference(genome.clone())
            .custom_backend(Always)
            .prefilter(PrefilterConfig::default())
            .build()
            .unwrap();
        assert!(pipeline.prefilter().is_some());
        assert_eq!(pipeline.map(&genome.window(0..64)).positions, vec![0]);
    }

    #[test]
    fn statuses_cover_all_read_lengths() {
        let (pipeline, genome) = pipeline(2);
        let exact = pipeline.map(&genome.window(100..164));
        assert_eq!(exact.status, MapStatus::Mapped);
        let long = pipeline.map(&genome.window(200..300));
        assert_eq!(long.status, MapStatus::Truncated);
        assert!(long.positions.contains(&200), "truncated prefix still maps");
        let short = pipeline.map(&genome.window(0..10));
        assert_eq!(short.status, MapStatus::Rejected);
        assert_eq!(short.cycles, 0);
        let foreign = GenomeModel::uniform().generate(64, 999);
        let unmapped = pipeline.map(&foreign);
        assert_eq!(unmapped.status, MapStatus::Unmapped);

        let stats = pipeline.stats();
        assert_eq!(stats.reads, 4);
        assert_eq!(stats.mapped, 1);
        assert_eq!(stats.truncated, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.unmapped, 1);
        assert!(stats.wall_s > 0.0);
    }

    #[test]
    fn map_iter_matches_map_batch() {
        let (a, genome) = pipeline(2);
        let (b, _) = pipeline(2);
        let reads: Vec<DnaSeq> = (0..10)
            .map(|i| genome.window(i * 64..(i + 1) * 64))
            .collect();
        let batched = a.map_batch(&reads);
        let streamed: Vec<MapRecord> = b.map_iter(reads).collect();
        assert_eq!(batched, streamed);
    }

    #[test]
    fn read_seed_mix_separates_indices() {
        let a = read_seed(0, 0);
        let b = read_seed(0, 1);
        let c = read_seed(1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(read_seed(7, 42), read_seed(7, 42));
    }

    #[test]
    fn active_fault_plan_requires_the_device_backend() {
        let genome = GenomeModel::uniform().generate(2_048, 3);
        let build_with = |backend: BackendKind, plan: FaultPlan| {
            AsmcapPipeline::builder()
                .reference(genome.clone())
                .config(PipelineConfig {
                    threshold: 2,
                    row_width: 64,
                    ..PipelineConfig::default()
                })
                .backend(backend)
                .fault(plan)
                .build()
        };
        for backend in [BackendKind::Pair, BackendKind::Software] {
            let err = build_with(backend, FaultPlan::paper_corner(1)).unwrap_err();
            assert!(matches!(err, PipelineError::FaultUnsupported { .. }));
            assert!(err.to_string().contains("device"), "{err}");
            // An inactive plan is a no-op on every backend.
            let pipeline = build_with(backend, FaultPlan::none()).unwrap();
            assert!(!pipeline.fault_armed());
            assert_eq!(pipeline.quarantined_rows(), 0);
        }
    }

    #[test]
    fn inactive_fault_plan_on_device_is_byte_identical_to_none() {
        let genome = GenomeModel::uniform().generate(2_048, 3);
        let build = |plan: Option<FaultPlan>| {
            let mut builder = AsmcapPipeline::builder()
                .reference(genome.clone())
                .config(PipelineConfig {
                    threshold: 2,
                    row_width: 64,
                    ..PipelineConfig::default()
                })
                .backend(BackendKind::Device)
                .workers(2);
            if let Some(plan) = plan {
                builder = builder.fault(plan);
            }
            builder.build().unwrap()
        };
        let plain = build(None);
        let off = build(Some(FaultPlan::none()));
        assert!(!off.fault_armed());
        let reads: Vec<DnaSeq> = (0..8)
            .map(|i| genome.window(i * 64..(i + 1) * 64))
            .collect();
        assert_eq!(plain.map_batch(&reads), off.map_batch(&reads));
    }

    #[test]
    fn fault_plan_degradation_is_observable_and_deterministic() {
        let genome = GenomeModel::uniform().generate(4_096, 11);
        let build = |workers: usize| {
            AsmcapPipeline::builder()
                .reference(genome.clone())
                .config(PipelineConfig {
                    threshold: 2,
                    row_width: 64,
                    seed: 0x0DD5,
                    ..PipelineConfig::default()
                })
                .backend(BackendKind::Device)
                .fault(FaultPlan {
                    dead_row_rate: 0.05,
                    transient_flip_rate: 0.01,
                    resense_votes: 3,
                    ..FaultPlan::paper_corner(9)
                })
                .workers(workers)
                .build()
                .unwrap()
        };
        let pipeline = build(1);
        assert!(pipeline.fault_armed());
        assert!(
            pipeline.quarantined_rows() > 0,
            "5% dead rows must trip the self-test"
        );
        let reads: Vec<DnaSeq> = (0..16)
            .map(|i| genome.window(i * 64..(i + 1) * 64))
            .collect();
        let records = pipeline.map_batch(&reads);
        let stats = pipeline.stats();
        // Every mitigated read is flagged, and the aggregate counters
        // account for exactly the per-record ones.
        assert_eq!(
            stats.degraded,
            records.iter().filter(|r| r.degraded).count() as u64
        );
        assert_eq!(
            stats.resensed,
            records.iter().map(|r| r.resensed).sum::<u64>()
        );
        assert_eq!(
            stats.requarried,
            records.iter().map(|r| r.requarried).sum::<u64>()
        );
        assert!(stats.requarried > 0, "quarantined rows must be consulted");
        for record in &records {
            assert_eq!(record.degraded, record.resensed + record.requarried > 0);
        }
        // Same seed + plan => identical records, independent of workers.
        for workers in [2usize, 8] {
            assert_eq!(
                build(workers).map_batch(&reads),
                records,
                "workers={workers}"
            );
        }
    }
}
