//! The per-pair accelerator engines: ASMCap and the EDAM baseline.
//!
//! An engine decides (read, segment, T) matches exactly as the hardware
//! would — ED\* matching semantics, analog sensing noise from the circuit
//! models, and the HDAC/TASR correction strategies — but without
//! materialising a full array, which makes it the right tool for the Fig. 7
//! accuracy sweeps (hundreds of thousands of pair decisions). The
//! array-level path with identical semantics lives in [`crate::mapper`].

use crate::hdac::Hdac;
use crate::matcher::{AsmMatcher, MatchOutcome};
use crate::tasr::Tasr;
use crate::Rng;
use asmcap_circuit::{ChargeDomainCam, CurrentDomainCam, SenseAmp, VrefPolicy};
use asmcap_genome::{Base, ErrorProfile, PackedSeq, PackedWords};
use asmcap_metrics::{ed_star_hamming_packed, ed_star_packed};

/// The ASMCap engine: charge-domain sensing plus the HDAC and TASR
/// misjudgment-correction strategies.
///
/// # Examples
///
/// ```
/// use asmcap::{AsmcapEngine, AsmMatcher};
/// use asmcap_genome::{DnaSeq, ErrorProfile};
///
/// let mut engine = AsmcapEngine::paper(ErrorProfile::condition_a(), 1);
/// let segment: DnaSeq = "ACGTACGTACGTACGT".parse()?;
/// let outcome = engine.matches(segment.as_slice(), segment.as_slice(), 0);
/// assert!(outcome.matched);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[derive(Debug)]
pub struct AsmcapEngine {
    sense: SenseAmp<ChargeDomainCam>,
    hdac: Option<Hdac>,
    tasr: Option<Tasr>,
    rng: Rng,
    label: String,
}

impl AsmcapEngine {
    /// The paper's full configuration: published circuit parameters, HDAC
    /// and TASR with paper constants, centred `V_ref`.
    #[must_use]
    pub fn paper(profile: ErrorProfile, seed: u64) -> Self {
        crate::config::AsmcapConfig::new(profile).seed(seed).build()
    }

    /// ASMCap without the correction strategies (the paper's
    /// "ASMCap w/o H. and T." series).
    #[must_use]
    pub fn without_strategies(seed: u64) -> Self {
        crate::config::AsmcapConfig::new(ErrorProfile::error_free())
            .hdac(None)
            .tasr(None)
            .seed(seed)
            .build()
    }

    pub(crate) fn assemble(
        sense: SenseAmp<ChargeDomainCam>,
        hdac: Option<Hdac>,
        tasr: Option<Tasr>,
        seed: u64,
    ) -> Self {
        let label = match (&hdac, &tasr) {
            (Some(_), Some(_)) => "ASMCap w/ H&T",
            (Some(_), None) => "ASMCap w/ HDAC",
            (None, Some(_)) => "ASMCap w/ TASR",
            (None, None) => "ASMCap w/o H&T",
        }
        .to_owned();
        Self {
            sense,
            hdac,
            tasr,
            rng: crate::rng(seed),
            label,
        }
    }

    /// The sense amplifier (and through it the charge-domain model).
    #[must_use]
    pub fn sense(&self) -> &SenseAmp<ChargeDomainCam> {
        &self.sense
    }

    /// Whether HDAC will issue its extra HD search at this threshold.
    #[must_use]
    pub fn hdac_active(&self, threshold: usize) -> bool {
        self.hdac.as_ref().is_some_and(|h| h.active(threshold))
    }

    /// Whether TASR's rotation loop is armed at this read length/threshold.
    #[must_use]
    pub fn tasr_active(&self, read_len: usize, threshold: usize) -> bool {
        self.tasr
            .as_ref()
            .is_some_and(|t| t.active(read_len, threshold))
    }

    /// One (segment, read, T) decision over packed operands — the
    /// word-parallel fast path [`crate::PairBackend`] loops over segment
    /// views with. Identical semantics, noise model, and RNG draw order to
    /// [`AsmMatcher::matches`]; the scalar entry point delegates here, so
    /// there is exactly one decision procedure.
    ///
    /// # Panics
    ///
    /// Panics if `segment` and `read` lengths differ.
    pub fn matches_packed<S: PackedWords>(
        &mut self,
        segment: &S,
        read: &PackedSeq,
        threshold: usize,
    ) -> MatchOutcome {
        assert_eq!(
            segment.len(),
            read.len(),
            "segment and read must be equally long"
        );
        let n = read.len();

        // When HDAC is armed both mismatch counts are needed, so the fused
        // kernel computes them in one pass over the words; otherwise only
        // the ED* count is evaluated.
        let hdac_armed = self.hdac.is_some_and(|h| h.active(threshold));

        // Cycle 1: the ED* search.
        let (n_mis, hd) = if hdac_armed {
            ed_star_hamming_packed(segment, read)
        } else {
            (ed_star_packed(segment, read), 0)
        };
        let o_star = self.sense.decide(n_mis, n, threshold, &mut self.rng);
        let mut cycles = 1u32;
        let mut decision = o_star;
        let mut used_hd = false;

        // HDAC (Algorithm 1): one extra HD-mode search when armed.
        if let Some(hdac) = self.hdac {
            if hdac_armed {
                let o_hd = self.sense.decide(hd, n, threshold, &mut self.rng);
                cycles += 1;
                used_hd = true;
                decision = hdac.select(o_hd, o_star, threshold, &mut self.rng);
            }
        }

        // TASR (Algorithm 2): rotated searches when armed; each costs a
        // cycle; early exit on the first rotated match.
        let mut rotations = 0u32;
        if let Some(tasr) = self.tasr {
            let sense = &self.sense;
            let rng = &mut self.rng;
            let (matched, issued) = tasr.run_packed(decision, read, threshold, |rotated| {
                sense.decide(ed_star_packed(segment, rotated), n, threshold, rng)
            });
            decision = matched;
            rotations = issued;
            cycles += issued;
        }

        MatchOutcome {
            matched: decision,
            cycles,
            used_hd,
            rotations,
        }
    }
}

impl AsmMatcher for AsmcapEngine {
    fn matches(&mut self, segment: &[Base], read: &[Base], threshold: usize) -> MatchOutcome {
        self.matches_packed(
            &PackedSeq::from_bases(segment),
            &PackedSeq::from_bases(read),
            threshold,
        )
    }

    fn matches_packed(
        &mut self,
        segment: &PackedSeq,
        read: &PackedSeq,
        threshold: usize,
    ) -> MatchOutcome {
        AsmcapEngine::matches_packed(self, segment, read, threshold)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// The EDAM baseline engine: identical ED\* matching semantics but
/// current-domain sensing (and optionally EDAM's plain, non-threshold-aware
/// sequence rotation).
#[derive(Debug)]
pub struct EdamEngine {
    sense: SenseAmp<CurrentDomainCam>,
    sr: Option<Tasr>,
    rng: Rng,
    label: String,
}

impl EdamEngine {
    /// The paper's EDAM baseline: published parameters, no rotation.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        crate::config::EdamConfig::new().seed(seed).build()
    }

    pub(crate) fn assemble(sense: SenseAmp<CurrentDomainCam>, sr: Option<Tasr>, seed: u64) -> Self {
        let label = if sr.is_some() { "EDAM w/ SR" } else { "EDAM" }.to_owned();
        Self {
            sense,
            sr,
            rng: crate::rng(seed),
            label,
        }
    }

    /// The sense amplifier (and through it the current-domain model).
    #[must_use]
    pub fn sense(&self) -> &SenseAmp<CurrentDomainCam> {
        &self.sense
    }

    /// One (segment, read, T) decision over packed operands — the
    /// word-parallel fast path the evaluation sweeps call via
    /// [`AsmMatcher::matches_packed`]. Identical semantics, noise model,
    /// and RNG draw order to [`AsmMatcher::matches`]; the scalar entry
    /// point delegates here, so there is exactly one decision procedure
    /// (the same single-procedure rule [`AsmcapEngine`] follows).
    ///
    /// # Panics
    ///
    /// Panics if `segment` and `read` lengths differ.
    pub fn matches_packed<S: PackedWords>(
        &mut self,
        segment: &S,
        read: &PackedSeq,
        threshold: usize,
    ) -> MatchOutcome {
        assert_eq!(
            segment.len(),
            read.len(),
            "segment and read must be equally long"
        );
        let n = read.len();
        let n_mis = ed_star_packed(segment, read);
        let mut decision = self.sense.decide(n_mis, n, threshold, &mut self.rng);
        let mut cycles = 1u32;
        let mut rotations = 0u32;
        if let Some(sr) = self.sr {
            let sense = &self.sense;
            let rng = &mut self.rng;
            let (matched, issued) = sr.run_packed(decision, read, threshold, |rotated| {
                sense.decide(ed_star_packed(segment, rotated), n, threshold, rng)
            });
            decision = matched;
            rotations = issued;
            cycles += issued;
        }
        MatchOutcome {
            matched: decision,
            cycles,
            used_hd: false,
            rotations,
        }
    }
}

impl AsmMatcher for EdamEngine {
    fn matches(&mut self, segment: &[Base], read: &[Base], threshold: usize) -> MatchOutcome {
        self.matches_packed(
            &PackedSeq::from_bases(segment),
            &PackedSeq::from_bases(read),
            threshold,
        )
    }

    fn matches_packed(
        &mut self,
        segment: &PackedSeq,
        read: &PackedSeq,
        threshold: usize,
    ) -> MatchOutcome {
        EdamEngine::matches_packed(self, segment, read, threshold)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Convenience for building all three Fig. 7 series at once:
/// `(EDAM, ASMCap w/o strategies, ASMCap w/ strategies)`.
#[must_use]
pub fn fig7_engines(profile: ErrorProfile, seed: u64) -> (EdamEngine, AsmcapEngine, AsmcapEngine) {
    let edam = EdamEngine::paper(seed);
    let without = crate::config::AsmcapConfig::new(profile)
        .hdac(None)
        .tasr(None)
        .seed(seed.wrapping_add(1))
        .build();
    let with = crate::config::AsmcapConfig::new(profile)
        .seed(seed.wrapping_add(2))
        .build();
    (edam, without, with)
}

/// A noise-free ASMCap engine (ideal sensing) for isolating algorithmic
/// effects in tests and ablations.
#[must_use]
pub fn noiseless_asmcap(profile: ErrorProfile, seed: u64) -> AsmcapEngine {
    let mut params = asmcap_circuit::params::AsmcapParams::paper();
    params.cap_sigma_rel = 0.0;
    params.sa_offset_states = 0.0;
    crate::config::AsmcapConfig::new(profile)
        .circuit_params(params)
        .vref(VrefPolicy::Centered)
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::{DnaSeq, GenomeModel, ReadSampler};

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    #[test]
    fn identical_pair_always_matches() {
        let mut engine = AsmcapEngine::paper(ErrorProfile::condition_a(), 3);
        let s = GenomeModel::uniform().generate(256, 1);
        for t in 0..8 {
            assert!(engine.matches(s.as_slice(), s.as_slice(), t).matched);
        }
    }

    #[test]
    fn random_pair_never_matches_at_small_t() {
        let mut engine = AsmcapEngine::paper(ErrorProfile::condition_a(), 4);
        let a = GenomeModel::uniform().generate(256, 2);
        let b = GenomeModel::uniform().generate(256, 3);
        for t in 0..8 {
            assert!(!engine.matches(a.as_slice(), b.as_slice(), t).matched);
        }
    }

    #[test]
    fn cycle_accounting_reflects_strategies() {
        let profile = ErrorProfile::condition_a();
        let mut engine = AsmcapEngine::paper(profile, 5);
        let s = GenomeModel::uniform().generate(256, 4);
        // Condition A, T=1: HDAC armed (+1 cycle), TASR gated off (T_l=52).
        let outcome = engine.matches(s.as_slice(), s.as_slice(), 1);
        assert_eq!(outcome.cycles, 2);
        assert!(outcome.used_hd);
        assert_eq!(outcome.rotations, 0);

        // Condition B, matching pair: TASR armed but base matched -> no
        // rotations; HDAC disabled -> 1 cycle total.
        let profile_b = ErrorProfile::condition_b();
        let mut engine_b = AsmcapEngine::paper(profile_b, 6);
        let outcome = engine_b.matches(s.as_slice(), s.as_slice(), 8);
        assert_eq!(outcome.cycles, 1);
        assert!(!outcome.used_hd);
    }

    #[test]
    fn tasr_rotations_cost_cycles_on_mismatch() {
        // Condition B, T >= T_l = 6, decoy pair: base misses, both rotations
        // issued and miss -> 3 cycles.
        let mut engine = AsmcapEngine::paper(ErrorProfile::condition_b(), 7);
        let a = GenomeModel::uniform().generate(256, 5);
        let b = GenomeModel::uniform().generate(256, 6);
        let outcome = engine.matches(a.as_slice(), b.as_slice(), 8);
        assert!(!outcome.matched);
        assert_eq!(outcome.rotations, 2);
        assert_eq!(outcome.cycles, 3);
    }

    #[test]
    fn hdac_corrects_substitution_false_positives() {
        // A deterministic Fig. 5 scenario: 5 substitutions, no indels, T=2.
        // ED* hides enough substitutions to fake a match; HD sees all 5.
        let profile = ErrorProfile::condition_a();
        let segment = seq("CCCCAAATTTGCTTAA");
        let read = seq("CGCCATATTGTCATAA"); // Fig. 5's read
        let t = 2usize;
        let ed = asmcap_metrics::edit_distance(segment.as_slice(), read.as_slice());
        assert!(ed > t, "ground truth must be negative, ED={ed}");
        // Run many trials: with HDAC the false-positive rate must drop well
        // below the no-strategy engine's rate.
        let mut with = AsmcapEngine::paper(profile, 8);
        let mut without = crate::config::AsmcapConfig::new(profile)
            .hdac(None)
            .tasr(None)
            .seed(9)
            .build();
        let trials = 2000;
        let fp_with = (0..trials)
            .filter(|_| with.matches(segment.as_slice(), read.as_slice(), t).matched)
            .count();
        let fp_without = (0..trials)
            .filter(|_| {
                without
                    .matches(segment.as_slice(), read.as_slice(), t)
                    .matched
            })
            .count();
        assert!(
            (fp_with as f64) < 0.8 * fp_without as f64,
            "HDAC did not reduce FPs: {fp_with} vs {fp_without}"
        );
    }

    #[test]
    fn tasr_recovers_consecutive_deletion_false_negatives() {
        // Condition B scenario: two consecutive deletions blow up ED*.
        let profile = ErrorProfile::condition_b();
        let genome = GenomeModel::uniform().generate(1000, 7);
        let segment = genome.window(100..356);
        let mut read_bases = segment.clone().into_bases();
        read_bases.drain(40..42);
        read_bases.extend_from_slice(&genome.as_slice()[356..358]);
        let read = DnaSeq::from_bases(read_bases);
        let t = 8usize;
        let ed = asmcap_metrics::edit::anchored_semi_global(
            read.as_slice(),
            genome.window(100..360).as_slice(),
        );
        assert!(ed <= t, "ground truth should be positive, ED={ed}");

        let mut with = AsmcapEngine::paper(profile, 10);
        let mut without = crate::config::AsmcapConfig::new(profile)
            .hdac(None)
            .tasr(None)
            .seed(11)
            .build();
        assert!(with.matches(segment.as_slice(), read.as_slice(), t).matched);
        assert!(
            !without
                .matches(segment.as_slice(), read.as_slice(), t)
                .matched
        );
    }

    #[test]
    fn edam_engine_matches_clean_pairs() {
        let mut edam = EdamEngine::paper(12);
        let s = GenomeModel::uniform().generate(256, 8);
        assert!(edam.matches(s.as_slice(), s.as_slice(), 4).matched);
        let decoy = GenomeModel::uniform().generate(256, 9);
        assert!(!edam.matches(s.as_slice(), decoy.as_slice(), 4).matched);
    }

    #[test]
    fn edam_sensing_is_noisier_near_threshold() {
        // A pair sitting 2 states above threshold: EDAM should false-match
        // noticeably more often than ASMCap w/o strategies.
        let genome = GenomeModel::uniform().generate(2000, 10);
        let sampler = ReadSampler::new(256, ErrorProfile::error_free());
        let mut rng = asmcap_genome::rng(1);
        let read = sampler.sample_at(&genome, 100, &mut rng);
        let segment = read.aligned_segment(&genome);
        // Fabricate n_mis = T + 2 by substituting bases far apart (each
        // substitution adds at most 1 to ED*; verify).
        let mut bases = read.bases.clone().into_bases();
        let mut changed = 0;
        let mut i = 3;
        while changed < 10 && i < bases.len() {
            let original = bases[i];
            bases[i] = original.substituted(0);
            if asmcap_metrics::ed_star(segment.as_slice(), &bases) > changed {
                changed += 1;
            } else {
                bases[i] = original;
            }
            i += 7;
        }
        let noisy_read = DnaSeq::from_bases(bases);
        let star = asmcap_metrics::ed_star(segment.as_slice(), noisy_read.as_slice());
        let t = star.saturating_sub(2);
        let mut edam = EdamEngine::paper(13);
        let mut asmcap = AsmcapEngine::without_strategies(14);
        let trials = 3000;
        let edam_fp = (0..trials)
            .filter(|_| {
                edam.matches(segment.as_slice(), noisy_read.as_slice(), t)
                    .matched
            })
            .count();
        let asmcap_fp = (0..trials)
            .filter(|_| {
                asmcap
                    .matches(segment.as_slice(), noisy_read.as_slice(), t)
                    .matched
            })
            .count();
        assert!(
            edam_fp > asmcap_fp + trials / 50,
            "EDAM {edam_fp} vs ASMCap {asmcap_fp} false positives"
        );
    }

    #[test]
    fn noiseless_engine_equals_pure_edstar_decision() {
        let mut engine = noiseless_asmcap(ErrorProfile::error_free(), 15);
        let genome = GenomeModel::uniform().generate(600, 11);
        let a = genome.window(0..256);
        let b = genome.window(300..556);
        for t in [0usize, 4, 16, 64, 200] {
            let star = asmcap_metrics::ed_star(a.as_slice(), b.as_slice());
            assert_eq!(
                engine.matches(a.as_slice(), b.as_slice(), t).matched,
                star <= t
            );
        }
    }

    #[test]
    fn fig7_engine_labels() {
        let (edam, without, with) = fig7_engines(ErrorProfile::condition_a(), 0);
        assert_eq!(edam.name(), "EDAM");
        assert_eq!(without.name(), "ASMCap w/o H&T");
        assert_eq!(with.name(), "ASMCap w/ H&T");
    }
}
