//! End-to-end read mapping through the simulated multi-array device
//! (deprecated — superseded by [`crate::AsmcapPipeline`]).
//!
//! [`ReadMapper`] drives an [`asmcap_arch::AsmcapDevice`] through its
//! controller with the exact instruction streams the strategies require:
//! an ED\* search, an optional HD-mode search (HDAC), and optional rotated
//! searches (TASR). The same instruction semantics now live in
//! [`crate::DeviceBackend`] behind the batch-first pipeline, which adds
//! statuses, batching, and worker-count-independent determinism; this shim
//! remains for downstream code that has not migrated yet. [`MapperConfig`]
//! is *not* deprecated — it stays the shared per-read matching
//! configuration used by the pipeline backends.
//!
//! One hardware-faithful difference from the pair engines: HDAC draws its
//! random number **once per read** (a host-side draw steering the result
//! MUX for all rows), rather than once per pair.

use crate::backend::collect;
use crate::hdac::HdacParams;
use crate::tasr::TasrParams;
use crate::Rng;
use asmcap_arch::{AsmcapDevice, Controller, Instruction, MatchMode, RowId};
use asmcap_circuit::ChargeDomainCam;
use asmcap_genome::{DnaSeq, ErrorProfile};
use rand::Rng as _;
use std::collections::BTreeMap;

/// Configuration of a device-level mapping run.
#[derive(Debug, Clone)]
pub struct MapperConfig {
    /// Edit-distance threshold `T`.
    pub threshold: usize,
    /// Expected error profile (parameterises HDAC and TASR).
    pub profile: ErrorProfile,
    /// HDAC parameters, or `None` to disable.
    pub hdac: Option<HdacParams>,
    /// TASR parameters, or `None` to disable.
    pub tasr: Option<TasrParams>,
}

impl MapperConfig {
    /// The paper's full configuration at a given threshold.
    #[must_use]
    pub fn paper(threshold: usize, profile: ErrorProfile) -> Self {
        Self {
            threshold,
            profile,
            hdac: Some(HdacParams::paper()),
            tasr: Some(TasrParams::paper()),
        }
    }

    /// Plain ED\* matching at a given threshold (no strategies).
    #[must_use]
    pub fn plain(threshold: usize) -> Self {
        Self {
            threshold,
            profile: ErrorProfile::error_free(),
            hdac: None,
            tasr: None,
        }
    }
}

/// Result of mapping one read against the stored reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedRead {
    /// Genome origins of all matching rows, sorted ascending.
    pub positions: Vec<usize>,
    /// Search cycles this read consumed (1 + HDAC + TASR rotations).
    pub cycles: u64,
    /// Search operations issued device-wide.
    pub searches: u64,
}

/// Maps reads against a reference stored in an ASMCap device.
///
/// # Examples
///
/// ```
/// use asmcap::{MapperConfig, ReadMapper};
/// use asmcap_arch::DeviceBuilder;
/// use asmcap_genome::{ErrorProfile, GenomeModel};
///
/// let mut device = DeviceBuilder::new()
///     .arrays(2).rows_per_array(32).row_width(64)
///     .build_asmcap();
/// let genome = GenomeModel::uniform().generate(64 * 64, 1);
/// device.store_reference(&genome, 64)?;
///
/// let mut mapper = ReadMapper::new(device, MapperConfig::plain(2), 9);
/// let read = genome.window(128..192); // row 2's segment
/// let mapped = mapper.map_read(&read);
/// assert_eq!(mapped.positions, vec![128]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
#[deprecated(
    since = "0.2.0",
    note = "use AsmcapPipeline with BackendKind::Device instead: it stores the \
            reference once, maps batches across workers, and reports per-read \
            statuses"
)]
pub struct ReadMapper {
    controller: Controller<ChargeDomainCam>,
    config: MapperConfig,
    host_rng: Rng,
}

#[allow(deprecated)]
impl ReadMapper {
    /// Wraps a loaded device. `seed` controls both sensing noise and the
    /// host-side HDAC draws.
    #[must_use]
    pub fn new(device: AsmcapDevice<ChargeDomainCam>, config: MapperConfig, seed: u64) -> Self {
        Self {
            controller: Controller::new(device, seed),
            config,
            host_rng: crate::rng(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1)),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Cumulative controller statistics across all mapped reads.
    #[must_use]
    pub fn stats(&self) -> asmcap_arch::RunStats {
        self.controller.stats()
    }

    /// The wrapped device.
    #[must_use]
    pub fn device(&self) -> &AsmcapDevice<ChargeDomainCam> {
        self.controller.device()
    }

    /// Maps one read: ED\* search plus the configured strategies, returning
    /// every matching stored-row origin.
    ///
    /// NOTE: [`crate::DeviceBackend`]'s [`crate::MappingBackend::map_seeded`]
    /// is the maintained copy of this search orchestration (it differs only
    /// in drawing per-read RNG streams instead of this mapper's persistent
    /// ones); apply any
    /// sequencing fix there first and mirror it here until this shim is
    /// removed.
    ///
    /// # Panics
    ///
    /// Panics if the read length differs from the device row width.
    pub fn map_read(&mut self, read: &DnaSeq) -> MappedRead {
        let t = self.config.threshold;
        let before = self.controller.stats();

        // Cycle 1: the ED* search.
        let base = self.controller.run(&[
            Instruction::LatchRead(read.clone()),
            Instruction::Search {
                threshold: t,
                mode: MatchMode::EdStar,
            },
        ]);
        let mut matched: BTreeMap<RowId, usize> = collect(&base[0]);

        // HDAC: one HD-mode search, one host-side draw for the result MUX.
        if let Some(hdac) = self.config.hdac {
            if hdac.enabled(&self.config.profile, t) {
                let hd = self.controller.run(&[Instruction::Search {
                    threshold: t,
                    mode: MatchMode::Hamming,
                }]);
                let p = hdac.probability(&self.config.profile, t);
                if self.host_rng.gen::<f64>() < p {
                    matched = collect(&hd[0]);
                }
            }
        }

        // TASR: N_R rotated ED* searches, OR-ed into the result set.
        if let Some(tasr) = self.config.tasr {
            if tasr.active(&self.config.profile, read.len(), t) {
                for i in 1..=tasr.rotations {
                    let (direction, amount) = tasr.schedule.step(i);
                    let mut program = vec![Instruction::ReloadRead];
                    program.extend((0..amount).map(|_| Instruction::Rotate(direction)));
                    program.push(Instruction::Search {
                        threshold: t,
                        mode: MatchMode::EdStar,
                    });
                    let rotated = self.controller.run(&program);
                    for (id, n_mis) in collect(&rotated[0]) {
                        matched.entry(id).or_insert(n_mis);
                    }
                }
            }
        }

        let after = self.controller.stats();
        let mut positions: Vec<usize> = matched
            .keys()
            .filter_map(|&id| self.controller.device().origin_of(id))
            .collect();
        positions.sort_unstable();
        positions.dedup();
        MappedRead {
            positions,
            cycles: after.cycles - before.cycles,
            searches: after.searches - before.searches,
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use asmcap_arch::DeviceBuilder;
    use asmcap_genome::{GenomeModel, ReadSampler};

    fn loaded_device(
        genome: &DnaSeq,
        width: usize,
        stride: usize,
    ) -> AsmcapDevice<ChargeDomainCam> {
        let rows_needed = (genome.len() - width) / stride + 1;
        let mut device = DeviceBuilder::new()
            .arrays(rows_needed.div_ceil(32))
            .rows_per_array(32)
            .row_width(width)
            .build_asmcap();
        device.store_reference(genome, stride).unwrap();
        device
    }

    #[test]
    fn exact_read_maps_to_its_origin() {
        let genome = GenomeModel::uniform().generate(4096, 31);
        let device = loaded_device(&genome, 64, 1);
        let mut mapper = ReadMapper::new(device, MapperConfig::plain(0), 1);
        let read = genome.window(777..841);
        let mapped = mapper.map_read(&read);
        // With stride-1 storage the rows at ±1 are one-shift windows of the
        // read, which ED*'s neighbor tolerance can legitimately accept (the
        // false-positive mode of paper Fig. 2c that HDAC corrects); plain
        // ED* must still report the true origin, and nothing further away.
        assert!(mapped.positions.contains(&777), "origin 777 not mapped");
        assert!(
            mapped.positions.iter().all(|&p| p.abs_diff(777) <= 1),
            "plain ED* matched beyond one-shift neighbors: {:?}",
            mapped.positions
        );
        assert_eq!(mapped.cycles, 2); // latch + search
    }

    #[test]
    fn erroneous_read_maps_with_paper_config() {
        let genome = GenomeModel::uniform().generate(8192, 32);
        let device = loaded_device(&genome, 256, 1);
        let profile = ErrorProfile::condition_a();
        let mut mapper = ReadMapper::new(device, MapperConfig::paper(8, profile), 2);
        let sampler = ReadSampler::new(256, profile);
        let mut rng = asmcap_genome::rng(5);
        let read = sampler.sample_at(&genome, 1000, &mut rng);
        let mapped = mapper.map_read(&read.bases);
        assert!(
            mapped.positions.contains(&1000),
            "expected origin 1000 among {:?}",
            mapped.positions
        );
    }

    #[test]
    fn hdac_spends_its_cycle_only_when_armed() {
        let genome = GenomeModel::uniform().generate(2048, 33);
        let profile = ErrorProfile::condition_a();
        // T=1: HDAC armed in Condition A; TASR gated off (T_l = 52).
        let device = loaded_device(&genome, 256, 256);
        let mut mapper = ReadMapper::new(device, MapperConfig::paper(1, profile), 3);
        let read = genome.window(0..256);
        let mapped = mapper.map_read(&read);
        assert_eq!(mapped.searches, 2); // ED* + HD

        // Condition B: HDAC disabled, T=8 >= T_l=6 arms TASR (2 rotations).
        let profile_b = ErrorProfile::condition_b();
        let device = loaded_device(&genome, 256, 256);
        let mut mapper = ReadMapper::new(device, MapperConfig::paper(8, profile_b), 4);
        let mapped = mapper.map_read(&read);
        assert_eq!(mapped.searches, 3); // ED* + 2 rotated
    }

    #[test]
    fn tasr_recovers_shifted_reads_on_device() {
        let genome = GenomeModel::uniform().generate(4096, 34);
        let profile = ErrorProfile::condition_b();
        let width = 256usize;
        // Read with two consecutive deletions at its origin 500.
        let mut bases = genome.window(500..500 + width).into_bases();
        bases.drain(30..32);
        bases.extend_from_slice(&genome.as_slice()[500 + width..500 + width + 2]);
        let read = DnaSeq::from_bases(bases);

        let device = loaded_device(&genome, width, 1);
        let mut plain = ReadMapper::new(device, MapperConfig::plain(8), 5);
        let without = plain.map_read(&read);

        let device = loaded_device(&genome, width, 1);
        let mut with = ReadMapper::new(device, MapperConfig::paper(8, profile), 6);
        let recovered = with.map_read(&read);

        assert!(
            !without.positions.contains(&500),
            "plain ED* should miss the shifted read"
        );
        assert!(
            recovered.positions.contains(&500),
            "TASR should recover origin 500, got {:?}",
            recovered.positions
        );
    }
}
