//! The optional extension/alignment stage: from *where does this read map*
//! to *how does it align there*.
//!
//! The CAM shortlist answers match/no-match per segment; real genome
//! analysis needs the edit transcript too. When
//! [`PipelineConfig::extension`](crate::PipelineConfig::extension) is armed,
//! each read's candidate origins are re-visited after the matching kernels:
//! the read is aligned against the packed reference segment at each of the
//! first [`ExtensionConfig::max_candidates`] origins with the GenASM-style
//! banded bit-vector traceback ([`asmcap_metrics::align_packed`]), and the
//! best alignment (lowest score, ties to the lowest origin) is attached to
//! the read's [`MapRecord`](crate::MapRecord).
//!
//! The stage is pure dynamic programming — no RNG, no cycle or energy
//! accounting — so arming it changes **only** the `alignment` field:
//! positions, statuses, cycles, searches, energy, and draw order stay
//! byte-identical to an extension-off run, and results remain
//! worker-count-independent (pinned by `tests/packed_equivalence.rs` and
//! `tests/pipeline_api.rs`).

use asmcap_genome::{DnaSeq, PackedRef, PackedSeq};
use asmcap_metrics::{align_packed, Alignment};

/// Configuration for the extension/alignment stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtensionConfig {
    /// Edit budget for the banded traceback, or `None` to derive it from
    /// the pipeline threshold as `2·T + 2` — wide enough that every
    /// candidate the matcher accepted (true ED ≤ T, plus ED\*'s tolerated
    /// misjudgments near the threshold) still receives a transcript.
    pub band: Option<usize>,
    /// How many candidate origins (ascending) to align per read; the best
    /// alignment wins. The shortlist is typically a handful, so this caps
    /// worst-case work on repetitive references.
    pub max_candidates: usize,
}

impl Default for ExtensionConfig {
    /// Derived band (`2·T + 2`), four candidates.
    fn default() -> Self {
        Self {
            band: None,
            max_candidates: 4,
        }
    }
}

impl ExtensionConfig {
    /// The band actually used at pipeline threshold `threshold`.
    #[must_use]
    pub fn effective_band(&self, threshold: usize) -> usize {
        self.band.unwrap_or(2 * threshold + 2)
    }
}

/// The built stage: the packed reference plus resolved knobs, assembled
/// once at [`PipelineBuilder::build`](crate::PipelineBuilder) time.
pub(crate) struct ExtensionStage {
    reference: PackedRef,
    width: usize,
    band: usize,
    max_candidates: usize,
}

impl ExtensionStage {
    pub(crate) fn new(
        reference: &DnaSeq,
        width: usize,
        threshold: usize,
        config: ExtensionConfig,
    ) -> Self {
        Self {
            reference: PackedRef::new(reference),
            width,
            band: config.effective_band(threshold),
            max_candidates: config.max_candidates.max(1),
        }
    }

    /// The resolved edit budget (for `Debug` output).
    pub(crate) fn band(&self) -> usize {
        self.band
    }

    /// Aligns `read` against the reference segment at each of the first
    /// `max_candidates` origins and returns the best transcript — lowest
    /// score, ties broken toward the lowest origin (positions arrive
    /// ascending). Origins whose segment would run past the reference end
    /// (a custom backend can report any position) are skipped, as are
    /// candidates whose distance exceeds the band.
    pub(crate) fn extend(&self, read: &PackedSeq, positions: &[usize]) -> Option<Alignment> {
        let mut best: Option<Alignment> = None;
        for &origin in positions.iter().take(self.max_candidates) {
            if origin + self.width > self.reference.len() {
                continue;
            }
            let segment = self.reference.segment(origin, self.width);
            if let Some((score, cigar)) = align_packed(read, &segment, self.band) {
                let improves = match &best {
                    None => true,
                    Some(current) => score < current.score,
                };
                if improves {
                    best = Some(Alignment {
                        origin,
                        score,
                        cigar,
                    });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::GenomeModel;

    #[test]
    fn effective_band_derives_from_threshold() {
        assert_eq!(ExtensionConfig::default().effective_band(8), 18);
        let explicit = ExtensionConfig {
            band: Some(5),
            max_candidates: 4,
        };
        assert_eq!(explicit.effective_band(8), 5);
    }

    #[test]
    fn best_candidate_wins_and_out_of_range_origins_are_skipped() {
        let genome = GenomeModel::uniform().generate(1_024, 3);
        let stage = ExtensionStage::new(&genome, 64, 4, ExtensionConfig::default());
        let read = PackedSeq::from_seq(&genome.window(300..364));
        // 200 is a real but worse origin; 300 is exact; 2_000 runs past the
        // reference end and must be skipped, not panic.
        let alignment = stage
            .extend(&read, &[200, 300, 2_000])
            .expect("exact origin aligns");
        assert_eq!(alignment.origin, 300);
        assert_eq!(alignment.score, 0);
        assert_eq!(alignment.cigar.to_string(), "64=");
        assert!(stage.extend(&read, &[]).is_none());
    }

    #[test]
    fn candidate_cap_bounds_the_work() {
        let genome = GenomeModel::uniform().generate(1_024, 5);
        let stage = ExtensionStage::new(
            &genome,
            64,
            4,
            ExtensionConfig {
                band: None,
                max_candidates: 1,
            },
        );
        let read = PackedSeq::from_seq(&genome.window(500..564));
        // The exact origin is second in the list but beyond the cap; the
        // first candidate is too far for the band, so nothing aligns.
        assert!(stage.extend(&read, &[0, 500]).is_none());
    }
}
