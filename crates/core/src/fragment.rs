//! Long-read support: k-mer fragmentation and position voting.
//!
//! The paper's top architecture notes that "the global buffer can fetch the
//! entire reads or k-mers for the subsequent match according to the read
//! length" (§III-A): short reads are matched whole, while reads longer than
//! the row width are split into row-width fragments. Because ED\* tolerates
//! intra-fragment edits, the fragments can be far longer than classical
//! seeds — which is exactly the paper's argument for why EDAM-style matching
//! "can support much larger k".
//!
//! [`LongReadMapper`] matches every fragment through an
//! [`crate::AsmcapPipeline`] (any backend) and votes: each matching row
//! implies a candidate origin for the whole read
//! (`row origin − fragment offset`); consistent candidates accumulate votes
//! and the read maps where enough fragments agree.

use crate::pipeline::{AsmcapPipeline, PipelineError};
use asmcap_genome::{DnaSeq, PackedSeq};

/// Configuration of the long-read fragment voter. The per-fragment matching
/// configuration lives in the pipeline the voter wraps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentConfig {
    /// Fragment stride along the read; defaults to the row width
    /// (non-overlapping fragments). Smaller strides add redundancy.
    pub stride: usize,
    /// Votes required to call a mapping, as a fraction of the fragments
    /// issued (e.g. 0.5 = majority).
    pub min_vote_fraction: f64,
    /// Two fragment candidates vote together if their implied origins are
    /// within this distance (absorbs indel-induced drift along the read).
    pub origin_tolerance: usize,
}

impl FragmentConfig {
    /// A sensible default: non-overlapping fragments, majority voting,
    /// ±8 bases of drift tolerance.
    #[must_use]
    pub fn new(row_width: usize) -> Self {
        Self {
            stride: row_width,
            min_vote_fraction: 0.5,
            origin_tolerance: 8,
        }
    }
}

/// One called mapping of a long read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LongReadMapping {
    /// Called origin of the whole read in the reference.
    pub origin: usize,
    /// Votes this origin received.
    pub votes: usize,
    /// Fragments issued in total.
    pub fragments: usize,
}

/// Maps reads longer than the row width by fragment voting over a pipeline.
///
/// # Examples
///
/// ```
/// use asmcap::fragment::{FragmentConfig, LongReadMapper};
/// use asmcap::{AsmcapPipeline, PipelineConfig};
/// use asmcap_genome::GenomeModel;
///
/// let genome = GenomeModel::uniform().generate(3_000, 1);
/// let pipeline = AsmcapPipeline::builder()
///     .reference(genome.clone())
///     .config(PipelineConfig {
///         row_width: 128,
///         seed: 7,
///         ..PipelineConfig::plain(4)
///     })
///     .build()?;
/// let mapper = LongReadMapper::new(pipeline, FragmentConfig::new(128));
/// // A 512-base "long read" = 4 fragments, error-free here.
/// let read = genome.window(1000..1512);
/// let mapping = mapper.map_long_read(&read).expect("maps");
/// assert_eq!(mapping.origin, 1000);
/// assert_eq!(mapping.fragments, 4);
/// # Ok::<(), asmcap::PipelineError>(())
/// ```
#[derive(Debug)]
pub struct LongReadMapper {
    pipeline: AsmcapPipeline,
    config: FragmentConfig,
    width: usize,
}

impl LongReadMapper {
    /// Wraps a built pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the config stride is zero — a zero stride would make the
    /// fragment walk loop forever. Use [`LongReadMapper::try_new`] for a
    /// recoverable error instead.
    #[must_use]
    pub fn new(pipeline: AsmcapPipeline, config: FragmentConfig) -> Self {
        Self::try_new(pipeline, config)
            .expect("fragment stride must be positive (FragmentConfig::new defaults sanely)")
    }

    /// Wraps a built pipeline, validating the fragment configuration.
    ///
    /// # Errors
    ///
    /// [`PipelineError::ZeroStride`] if `config.stride` is zero.
    pub fn try_new(
        pipeline: AsmcapPipeline,
        config: FragmentConfig,
    ) -> Result<Self, PipelineError> {
        if config.stride == 0 {
            return Err(PipelineError::ZeroStride);
        }
        let width = pipeline.row_width();
        Ok(Self {
            pipeline,
            config,
            width,
        })
    }

    /// The wrapped pipeline (for statistics or direct short-read mapping).
    #[must_use]
    pub fn pipeline(&self) -> &AsmcapPipeline {
        &self.pipeline
    }

    /// Cumulative pipeline statistics.
    #[must_use]
    pub fn stats(&self) -> crate::pipeline::PipelineStats {
        self.pipeline.stats()
    }

    /// The fragment start offsets for a read of `len` bases: every stride
    /// step, with the final window anchored to the read end so no suffix is
    /// lost.
    fn fragment_offsets(&self, len: usize) -> Vec<usize> {
        let width = self.width;
        if len <= width {
            return vec![0];
        }
        let mut out = Vec::new();
        let mut offset = 0usize;
        loop {
            if offset + width >= len {
                out.push(len - width);
                break;
            }
            out.push(offset);
            offset += self.config.stride;
        }
        out
    }

    /// Splits `read` into row-width fragments at the configured stride
    /// (the final window is anchored to the read end so no suffix is lost).
    ///
    /// This is the inspection-friendly unpacked view;
    /// [`LongReadMapper::map_long_read`] extracts the same fragments as
    /// packed windows of a single read packing instead of allocating a
    /// [`DnaSeq`] per fragment.
    #[must_use]
    pub fn fragments(&self, read: &DnaSeq) -> Vec<(usize, DnaSeq)> {
        self.fragment_offsets(read.len())
            .into_iter()
            .map(|offset| {
                (
                    offset,
                    read.window(offset..(offset + self.width).min(read.len())),
                )
            })
            .collect()
    }

    /// Maps one long read: fragment, match each fragment through the
    /// pipeline (as one batch), vote on consistent origins. Returns `None`
    /// when no origin reaches the vote threshold.
    ///
    /// With stride-1 storage a fragment also matches the rows one base to
    /// either side of its true origin (ED\* tolerates the shift), so each
    /// fragment's hits are first collapsed into tolerance-bounded groups and
    /// each group contributes *one* vote at its median implied origin; the
    /// called origin is the median of the winning cluster's samples.
    pub fn map_long_read(&self, read: &DnaSeq) -> Option<LongReadMapping> {
        // Pack the whole read once; fragments are word-aligned packed
        // windows of that packing, fed straight to the packed batch path.
        let packed = PackedSeq::from_seq(read);
        let offsets = self.fragment_offsets(read.len());
        let fragments: Vec<PackedSeq> = offsets
            .iter()
            .map(|&offset| packed.window(offset..(offset + self.width).min(packed.len())))
            .collect();
        let issued = fragments.len();
        let records = self.pipeline.map_batch_packed(&fragments);
        struct Cluster {
            representative: usize,
            samples: Vec<usize>,
        }
        let mut clusters: Vec<Cluster> = Vec::new();
        let tolerance = self.config.origin_tolerance;
        for (offset, record) in offsets.iter().zip(&records) {
            // Implied whole-read origins from this fragment, ascending
            // (record positions are sorted).
            let implied: Vec<usize> = record
                .positions
                .iter()
                .filter_map(|p| p.checked_sub(*offset))
                .collect();
            // Collapse this fragment's hits into tolerance-bounded runs.
            let mut groups: Vec<Vec<usize>> = Vec::new();
            for origin in implied {
                match groups.last_mut() {
                    Some(group) if origin - *group.last().expect("non-empty") <= tolerance => {
                        group.push(origin);
                    }
                    _ => groups.push(vec![origin]),
                }
            }
            for group in groups {
                let median = group[group.len() / 2];
                match clusters
                    .iter_mut()
                    .find(|c| c.representative.abs_diff(median) <= tolerance)
                {
                    Some(cluster) => cluster.samples.push(median),
                    None => clusters.push(Cluster {
                        representative: median,
                        samples: vec![median],
                    }),
                }
            }
        }
        let required = (((issued as f64) * self.config.min_vote_fraction).ceil() as usize).max(1);
        clusters
            .into_iter()
            .filter(|c| c.samples.len() >= required)
            .max_by_key(|c| c.samples.len())
            .map(|mut cluster| {
                cluster.samples.sort_unstable();
                LongReadMapping {
                    origin: cluster.samples[cluster.samples.len() / 2],
                    votes: cluster.samples.len(),
                    fragments: issued,
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{AsmcapPipeline, PipelineConfig};
    use crate::{HdacParams, TasrParams};
    use asmcap_genome::{ErrorModel, ErrorProfile, GenomeModel, ReadSampler};

    fn plain_pipeline(
        genome: &DnaSeq,
        width: usize,
        threshold: usize,
        seed: u64,
    ) -> AsmcapPipeline {
        AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(PipelineConfig {
                row_width: width,
                seed,
                ..PipelineConfig::plain(threshold)
            })
            .build()
            .unwrap()
    }

    #[test]
    fn fragments_cover_the_whole_read() {
        let genome = GenomeModel::uniform().generate(4_096, 1);
        let mapper =
            LongReadMapper::new(plain_pipeline(&genome, 128, 4, 1), FragmentConfig::new(128));
        let read = genome.window(0..500); // not a multiple of 128
        let fragments = mapper.fragments(&read);
        assert_eq!(fragments.len(), 4);
        assert_eq!(fragments[0].0, 0);
        assert_eq!(fragments.last().unwrap().0, 500 - 128);
        assert!(fragments.iter().all(|(_, f)| f.len() == 128));
        // Short reads pass through unfragmented.
        let short = genome.window(0..100);
        assert_eq!(mapper.fragments(&short).len(), 1);
    }

    #[test]
    fn error_free_long_read_maps_exactly() {
        let genome = GenomeModel::uniform().generate(6_000, 2);
        let mapper =
            LongReadMapper::new(plain_pipeline(&genome, 128, 2, 2), FragmentConfig::new(128));
        let read = genome.window(2_345..2_345 + 640);
        let mapping = mapper.map_long_read(&read).expect("should map");
        assert_eq!(mapping.origin, 2_345);
        assert_eq!(mapping.votes, mapping.fragments);
    }

    #[test]
    fn erroneous_long_read_maps_by_majority() {
        // A TGS-flavoured long read: 1024 bases with heavy mixed errors.
        let genome = GenomeModel::uniform().generate(8_192, 3);
        let profile = ErrorProfile::new(0.02, 0.01, 0.01); // 4% total
        let model = ErrorModel::Bursty {
            profile,
            mean_burst_len: 2.0,
        };
        let sampler = ReadSampler::with_model(1024, model);
        let mut rng = asmcap_genome::rng(4);
        let read = sampler.sample_at(&genome, 3_000, &mut rng);

        let pipeline = AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(PipelineConfig {
                threshold: 24,
                profile,
                hdac: Some(HdacParams::paper()),
                tasr: Some(TasrParams::paper()),
                row_width: 256,
                seed: 5,
                ..PipelineConfig::default()
            })
            .build()
            .unwrap();
        let config = FragmentConfig {
            stride: 256,
            min_vote_fraction: 0.5,
            origin_tolerance: 48,
        };
        let mapper = LongReadMapper::new(pipeline, config);
        let mapping = mapper.map_long_read(&read.bases).expect("should map");
        assert!(
            mapping.origin.abs_diff(3_000) <= 48,
            "mapped to {} (true 3000)",
            mapping.origin
        );
    }

    #[test]
    fn zero_stride_is_rejected_at_construction() {
        // A zero stride would spin the fragment walk forever; both
        // constructors must refuse it before any read is mapped.
        let genome = GenomeModel::uniform().generate(2_048, 9);
        let config = FragmentConfig {
            stride: 0,
            ..FragmentConfig::new(128)
        };
        let err = LongReadMapper::try_new(plain_pipeline(&genome, 128, 2, 1), config)
            .expect_err("zero stride must be rejected");
        assert_eq!(err, crate::PipelineError::ZeroStride);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            LongReadMapper::new(plain_pipeline(&genome, 128, 2, 1), config)
        }));
        assert!(
            panicked.is_err(),
            "LongReadMapper::new must panic on stride 0"
        );
    }

    #[test]
    fn try_new_accepts_sane_configs() {
        let genome = GenomeModel::uniform().generate(2_048, 10);
        let mapper =
            LongReadMapper::try_new(plain_pipeline(&genome, 128, 2, 1), FragmentConfig::new(128))
                .expect("default config is valid");
        let read = genome.window(100..612);
        assert_eq!(mapper.fragments(&read).len(), 4);
    }

    #[test]
    fn unrelated_long_read_does_not_map() {
        let genome = GenomeModel::uniform().generate(6_000, 6);
        let mapper =
            LongReadMapper::new(plain_pipeline(&genome, 128, 6, 7), FragmentConfig::new(128));
        let foreign = GenomeModel::uniform().generate(512, 999);
        assert!(mapper.map_long_read(&foreign).is_none());
    }
}
