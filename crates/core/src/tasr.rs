//! Threshold-Aware Sequence Rotation (paper §IV-B, Algorithm 2).
//!
//! Consecutive insertions or deletions shift the read's tail by two or more
//! bases — beyond the ±1 window ED\* tolerates — so ED\* blows up while the
//! true edit distance stays small: a false negative whenever
//! `ED ≤ T < ED*`. Rotating the read base-by-base re-aligns the tail and
//! lets one of the rotated searches match.
//!
//! Plain sequence rotation (SR, inherited from EDAM) rotates
//! unconditionally, which *creates* false positives at small `T` (a rotated
//! read may fluke below a tight threshold). TASR adds the threshold gate:
//! rotations run only when `T ≥ T_l` with
//!
//! ```text
//! T_l = ⌈ γ/e_id · m ⌉
//! ```
//!
//! so rotation activates exactly where consecutive indels are plausible
//! (`e_id` high) or the threshold is loose enough to be safe.

use asmcap_arch::registers::RotateDirection;
use asmcap_genome::{Base, ErrorProfile, PackedSeq};

/// Which directions the rotated searches try.
///
/// Algorithm 2 says "rotate left (right) `i` bases" without fixing the
/// direction. Deletions in the read need *right* rotations to re-align,
/// insertions need *left* rotations, so the default alternates to cover
/// both (see `DESIGN.md` §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RotationSchedule {
    /// right 1, left 1, right 2, left 2, …
    #[default]
    Alternate,
    /// left 1, left 2, left 3, …
    LeftOnly,
    /// right 1, right 2, right 3, …
    RightOnly,
}

impl RotationSchedule {
    /// The `i`-th rotation (1-based): direction and amount.
    ///
    /// # Panics
    ///
    /// Panics if `i` is zero (rotation 0 is the original read).
    #[must_use]
    pub fn step(&self, i: usize) -> (RotateDirection, usize) {
        assert!(i > 0, "rotation steps are 1-based");
        match self {
            RotationSchedule::Alternate => {
                let amount = i.div_ceil(2);
                if i % 2 == 1 {
                    (RotateDirection::Right, amount)
                } else {
                    (RotateDirection::Left, amount)
                }
            }
            RotationSchedule::LeftOnly => (RotateDirection::Left, i),
            RotationSchedule::RightOnly => (RotateDirection::Right, i),
        }
    }

    /// Applies the `i`-th rotation to a read.
    #[must_use]
    pub fn rotated(&self, read: &[Base], i: usize) -> Vec<Base> {
        let (direction, amount) = self.step(i);
        let mut out = read.to_vec();
        if out.is_empty() {
            return out;
        }
        let amount = amount % out.len();
        match direction {
            RotateDirection::Left => out.rotate_left(amount),
            RotateDirection::Right => out.rotate_right(amount),
        }
        out
    }

    /// Applies the `i`-th rotation to a packed read — the word-level
    /// equivalent of the shift-register file rotating `amount` positions in
    /// `direction`, producing the same sequence [`RotationSchedule::rotated`]
    /// yields on bases.
    #[must_use]
    pub fn rotated_packed(&self, read: &PackedSeq, i: usize) -> PackedSeq {
        let (direction, amount) = self.step(i);
        match direction {
            RotateDirection::Left => read.rotated_left(amount),
            RotateDirection::Right => read.rotated_right(amount),
        }
    }
}

/// Tunable constants of TASR.
///
/// # Examples
///
/// ```
/// use asmcap::TasrParams;
/// use asmcap_genome::ErrorProfile;
///
/// let params = TasrParams::paper();
/// // Condition A (few indels): T_l = ceil(2e-4/1e-3 * 256) = 52 — rotation
/// // never triggers in the paper's T = 1..8 sweep.
/// assert_eq!(params.lower_bound(&ErrorProfile::condition_a(), 256), 52);
/// // Condition B (indel-dominant): T_l = ceil(2e-4/1e-2 * 256) = 6.
/// assert_eq!(params.lower_bound(&ErrorProfile::condition_b(), 256), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TasrParams {
    /// Lower-bound constant `γ` (paper: 2 × 10⁻⁴).
    pub gamma: f64,
    /// Total rotation count `N_R` (paper: 2).
    pub rotations: usize,
    /// Rotation direction schedule.
    pub schedule: RotationSchedule,
    /// When `false`, the `T_l` gate is bypassed — plain SR, the EDAM
    /// behaviour TASR improves on.
    pub threshold_aware: bool,
}

impl TasrParams {
    /// The paper's constants: `γ = 2e-4`, `N_R = 2`, alternating schedule.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            gamma: 2e-4,
            rotations: 2,
            schedule: RotationSchedule::Alternate,
            threshold_aware: true,
        }
    }

    /// Plain (non-threshold-aware) sequence rotation with `rotations` steps.
    #[must_use]
    pub fn plain_sr(rotations: usize) -> Self {
        Self {
            gamma: 0.0,
            rotations,
            schedule: RotationSchedule::Alternate,
            threshold_aware: false,
        }
    }

    /// The rotation gate `T_l = ⌈γ/e_id · m⌉` for read length `m`.
    ///
    /// An error-free profile (no indels) returns `usize::MAX`: rotation can
    /// never help and is permanently gated off.
    #[must_use]
    pub fn lower_bound(&self, profile: &ErrorProfile, read_len: usize) -> usize {
        let eid = profile.indel_rate();
        if eid == 0.0 {
            return usize::MAX;
        }
        (self.gamma / eid * read_len as f64).ceil() as usize
    }

    /// Whether rotated searches run at this threshold.
    #[must_use]
    pub fn active(&self, profile: &ErrorProfile, read_len: usize, threshold: usize) -> bool {
        if self.rotations == 0 {
            return false;
        }
        !self.threshold_aware || threshold >= self.lower_bound(profile, read_len)
    }
}

impl Default for TasrParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// The TASR stage (Algorithm 2), bound to an error profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tasr {
    params: TasrParams,
    profile: ErrorProfile,
}

impl Tasr {
    /// Creates the stage for a known (or profiled) error model.
    #[must_use]
    pub fn new(params: TasrParams, profile: ErrorProfile) -> Self {
        Self { params, profile }
    }

    /// The configured parameters.
    #[must_use]
    pub fn params(&self) -> &TasrParams {
        &self.params
    }

    /// Whether rotations run for this read length and threshold.
    #[must_use]
    pub fn active(&self, read_len: usize, threshold: usize) -> bool {
        self.params.active(&self.profile, read_len, threshold)
    }

    /// Algorithm 2's rotation loop: runs `decide` on each rotated read
    /// (rotations `1..=N_R`), OR-ing the results, with early exit on the
    /// first match. Returns `(matched, rotations_issued)`.
    ///
    /// The caller supplies the original read's decision as `base` (the
    /// `i = 0` iteration of the paper's loop) and a `decide` closure that
    /// performs one search — on the pair engine or on the real device.
    pub fn run(
        &self,
        base: bool,
        read: &[Base],
        threshold: usize,
        mut decide: impl FnMut(&[Base]) -> bool,
    ) -> (bool, u32) {
        self.run_loop(
            base,
            read.len(),
            threshold,
            |schedule, i| schedule.rotated(read, i),
            |rotated| decide(rotated),
        )
    }

    /// [`Tasr::run`] over a packed read: identical gating, rotation
    /// schedule, and early exit, with rotations applied word-parallel.
    pub fn run_packed(
        &self,
        base: bool,
        read: &PackedSeq,
        threshold: usize,
        mut decide: impl FnMut(&PackedSeq) -> bool,
    ) -> (bool, u32) {
        self.run_loop(
            base,
            read.len(),
            threshold,
            |schedule, i| schedule.rotated_packed(read, i),
            |rotated| decide(rotated),
        )
    }

    /// The one Algorithm-2 loop both representations share: gate on
    /// `(read_len, threshold)`, rotate per the schedule, early-exit on the
    /// first match.
    fn run_loop<T>(
        &self,
        base: bool,
        read_len: usize,
        threshold: usize,
        rotate: impl Fn(&RotationSchedule, usize) -> T,
        mut decide: impl FnMut(&T) -> bool,
    ) -> (bool, u32) {
        if base || !self.active(read_len, threshold) {
            return (base, 0);
        }
        let mut issued = 0u32;
        for i in 1..=self.params.rotations {
            let rotated = rotate(&self.params.schedule, i);
            issued += 1;
            if decide(&rotated) {
                return (true, issued);
            }
        }
        (false, issued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::{DnaSeq, GenomeModel};
    use asmcap_metrics::ed_star;

    #[test]
    fn paper_constants() {
        let p = TasrParams::paper();
        assert_eq!(p.gamma, 2e-4);
        assert_eq!(p.rotations, 2);
        assert!(p.threshold_aware);
    }

    #[test]
    fn lower_bound_scales_inversely_with_indel_rate() {
        let p = TasrParams::paper();
        let high_indel = ErrorProfile::new(0.001, 0.01, 0.01);
        let low_indel = ErrorProfile::new(0.001, 0.0005, 0.0005);
        assert!(p.lower_bound(&high_indel, 256) < p.lower_bound(&low_indel, 256));
        assert_eq!(p.lower_bound(&ErrorProfile::error_free(), 256), usize::MAX);
    }

    #[test]
    fn plain_sr_ignores_the_gate() {
        let sr = TasrParams::plain_sr(2);
        let a = ErrorProfile::condition_a();
        assert!(sr.active(&a, 256, 1));
        let tasr = TasrParams::paper();
        assert!(!tasr.active(&a, 256, 1)); // T_l = 52 in Condition A
    }

    #[test]
    fn alternate_schedule_covers_both_directions() {
        let s = RotationSchedule::Alternate;
        assert_eq!(s.step(1), (RotateDirection::Right, 1));
        assert_eq!(s.step(2), (RotateDirection::Left, 1));
        assert_eq!(s.step(3), (RotateDirection::Right, 2));
        assert_eq!(s.step(4), (RotateDirection::Left, 2));
        assert_eq!(
            RotationSchedule::LeftOnly.step(3),
            (RotateDirection::Left, 3)
        );
        assert_eq!(
            RotationSchedule::RightOnly.step(2),
            (RotateDirection::Right, 2)
        );
    }

    #[test]
    fn rotation_fixes_consecutive_deletions() {
        // Fig. 6 scenario: the read lost two consecutive bases, ED* explodes
        // on the original read but collapses on a right-rotated one.
        let stored = GenomeModel::uniform().generate(64, 123);
        let mut read_bases = stored.clone().into_bases();
        read_bases.drain(10..12);
        read_bases.extend([asmcap_genome::Base::A, asmcap_genome::Base::A]);
        let read = DnaSeq::from_bases(read_bases);
        let original = ed_star(stored.as_slice(), read.as_slice());
        assert!(original > 10, "expected a blown-up ED*, got {original}");
        let schedule = RotationSchedule::Alternate;
        let best_rotated = (1..=2)
            .map(|i| ed_star(stored.as_slice(), &schedule.rotated(read.as_slice(), i)))
            .min()
            .unwrap();
        assert!(
            best_rotated <= 6,
            "rotation should re-align the tail, got ED* {best_rotated}"
        );
    }

    #[test]
    fn run_early_exits_and_counts_cycles() {
        let tasr = Tasr::new(TasrParams::paper(), ErrorProfile::condition_b());
        let read: DnaSeq = "ACGTACGTACGTACGT".parse().unwrap();
        // Base already matched: no rotations issued.
        let (matched, issued) = tasr.run(true, read.as_slice(), 16, |_| false);
        assert!(matched);
        assert_eq!(issued, 0);
        // Gate passes (T=16 >= T_l for 16-base read in condition B? T_l =
        // ceil(2e-4/0.01*16) = 1); first rotation matches -> 1 cycle.
        let (matched, issued) = tasr.run(false, read.as_slice(), 16, |_| true);
        assert!(matched);
        assert_eq!(issued, 1);
        // Nothing matches -> N_R cycles.
        let (matched, issued) = tasr.run(false, read.as_slice(), 16, |_| false);
        assert!(!matched);
        assert_eq!(issued, 2);
    }

    #[test]
    fn run_respects_the_gate() {
        let tasr = Tasr::new(TasrParams::paper(), ErrorProfile::condition_a());
        let read: DnaSeq = "ACGT".repeat(64).parse().unwrap();
        // Condition A, T=1 < T_l=52: the decide closure must never be called.
        let (matched, issued) = tasr.run(false, read.as_slice(), 1, |_| {
            panic!("rotation ran despite the gate")
        });
        assert!(!matched);
        assert_eq!(issued, 0);
    }
}
