//! The work-stealing batch executor behind [`crate::AsmcapPipeline`].
//!
//! PR 2's `map_batch` sharded a batch into `workers` equal chunks up
//! front (`chunks(div_ceil)`), which serializes on the slowest chunk: with
//! a prefilter armed, per-read cost is proportional to the shortlist
//! length, and a handful of full-scan fallbacks landing in one chunk left
//! every other worker idle while that chunk ground on. This module
//! replaces the fixed sharding with a **chunk-queue work-stealing
//! scheduler**: the batch is cut into fixed-size [`TILE`]-item tiles, a
//! single atomic cursor hands tiles out, and each worker loops "claim next
//! tile → map it" until the queue is dry. A worker stuck on an expensive
//! tile simply stops claiming; the others drain the rest of the queue.
//!
//! No new dependencies: the queue is one `AtomicUsize` over
//! `std::thread::scope` workers.
//!
//! # Determinism
//!
//! Tiles only partition the *index space* — each item is still mapped
//! from its own index (per-read seeds in the pipeline's case), and the
//! executor reassembles results in item order. Which worker claims which
//! tile can vary run to run; the output cannot. The pipeline's
//! worker-count-invariance tests (`tests/pipeline_api.rs`) pin this under
//! adversarially skewed per-read costs.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Items per tile. Small enough that a skewed batch splits into many more
/// tiles than workers (so stealing has something to steal), large enough
/// that the atomic claim is amortized over real work.
pub const TILE: usize = 16;

/// Maps `items` indices through `map_tile` across up to `workers` threads
/// and returns the tile results flattened **in item order**.
///
/// `map_tile` receives a half-open index range (one tile, except possibly
/// a shorter final tile) and returns its results in range order. With one
/// worker (or one tile) everything runs on the calling thread with no
/// synchronization at all.
///
/// # Panics
///
/// Propagates panics from `map_tile` (a panicking worker).
pub fn run_tiled<R, F>(items: usize, workers: usize, map_tile: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> Vec<R> + Sync,
{
    if items == 0 {
        return Vec::new();
    }
    let tiles = items.div_ceil(TILE);
    let workers = workers.max(1).min(tiles);
    if workers == 1 {
        return map_tile(0..items);
    }
    let cursor = AtomicUsize::new(0);
    let mut shards: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut claimed = Vec::new();
                    loop {
                        // lint: relaxed-ok — the counter only claims tile
                        // indices; results are reordered by tile ID below.
                        let tile = cursor.fetch_add(1, Ordering::Relaxed);
                        if tile >= tiles {
                            break;
                        }
                        let lo = tile * TILE;
                        let hi = ((tile + 1) * TILE).min(items);
                        claimed.push((tile, map_tile(lo..hi)));
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("executor worker panicked"))
            .collect()
    });
    shards.sort_unstable_by_key(|&(tile, _)| tile);
    let mut out = Vec::with_capacity(items);
    for (_, chunk) in shards {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn identity(items: usize, workers: usize) -> Vec<usize> {
        run_tiled(items, workers, |range| range.collect())
    }

    #[test]
    fn results_come_back_in_item_order() {
        for items in [0usize, 1, 15, 16, 17, 64, 100, 1000] {
            for workers in [1usize, 2, 3, 8, 64] {
                assert_eq!(
                    identity(items, workers),
                    (0..items).collect::<Vec<_>>(),
                    "items={items} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn every_index_is_mapped_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        let out = run_tiled(500, 8, |range| {
            range
                .map(|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                    i * 2
                })
                .collect::<Vec<_>>()
        });
        assert_eq!(out, (0..500).map(|i| i * 2).collect::<Vec<_>>());
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn skewed_tiles_do_not_change_results() {
        // Tiles near the front cost ~1000x the rest: a fixed equal-chunk
        // shard would serialize on worker 0; the queue just drains around
        // it, and the output is identical at every worker count.
        let expensive = |i: usize| {
            let spins = if i < 32 { 50_000 } else { 50 };
            (0..spins).fold(i as u64, |acc, x| acc.wrapping_mul(31).wrapping_add(x))
        };
        let reference: Vec<u64> = (0..256).map(expensive).collect();
        for workers in [1usize, 2, 8] {
            let out = run_tiled(256, workers, |range| {
                range.map(expensive).collect::<Vec<_>>()
            });
            assert_eq!(out, reference, "workers={workers}");
        }
    }

    #[test]
    #[should_panic(expected = "executor worker panicked")]
    fn worker_panics_propagate() {
        let _ = run_tiled(100, 4, |range| {
            if range.contains(&50) {
                panic!("boom");
            }
            range.collect::<Vec<_>>()
        });
    }
}
