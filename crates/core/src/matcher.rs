//! The matcher abstraction: one (read, segment, threshold) decision.

use asmcap_genome::{Base, PackedSeq};
use asmcap_metrics::{ed_star, ed_star_packed, edit_distance_banded, edit_distance_banded_packed};

/// Result of one match decision, with the cycle cost the decision incurred
/// on the accelerator (1 for a plain search, +1 for an HDAC HD search, +1
/// per TASR rotation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchOutcome {
    /// The matching result: `true` = match.
    pub matched: bool,
    /// Search cycles consumed.
    pub cycles: u32,
    /// Whether an HDAC HD-mode search was issued.
    pub used_hd: bool,
    /// Number of TASR rotated searches issued.
    pub rotations: u32,
}

impl MatchOutcome {
    /// A single-cycle plain decision.
    #[must_use]
    pub fn plain(matched: bool) -> Self {
        Self {
            matched,
            cycles: 1,
            used_hd: false,
            rotations: 0,
        }
    }
}

/// An approximate string matcher: decides whether `read` matches the stored
/// `segment` at edit-distance threshold `threshold`.
///
/// `&mut self` because hardware matchers carry RNG state for their sensing
/// noise; pure matchers simply ignore it.
pub trait AsmMatcher {
    /// One match decision.
    ///
    /// # Panics
    ///
    /// Implementations panic if `segment` and `read` lengths differ (a CAM
    /// row is exactly as wide as the read).
    fn matches(&mut self, segment: &[Base], read: &[Base], threshold: usize) -> MatchOutcome;

    /// [`AsmMatcher::matches`] over 2-bit packed operands — the entry
    /// point the evaluation harness calls (it packs each pair exactly
    /// once; see `asmcap_eval::EvalDataset::evaluate`).
    ///
    /// The default unpacks and forwards to [`AsmMatcher::matches`], so
    /// every matcher stays correct with no extra code; packed-native
    /// matchers (the engines, the baselines) override it to run the
    /// word-parallel kernels directly. Overrides must make the **same
    /// decision and draw the same RNG stream** as the slice path —
    /// `tests/packed_equivalence.rs` pins this for the built-ins.
    ///
    /// # Panics
    ///
    /// Implementations panic if `segment` and `read` lengths differ.
    fn matches_packed(
        &mut self,
        segment: &PackedSeq,
        read: &PackedSeq,
        threshold: usize,
    ) -> MatchOutcome {
        self.matches(
            segment.to_seq().as_slice(),
            read.to_seq().as_slice(),
            threshold,
        )
    }

    /// Short display name for reports.
    fn name(&self) -> &str;
}

/// Ground-truth matcher: exact (banded) edit distance `ED ≤ T`.
///
/// This is *not* a hardware model — it is the oracle the F1 evaluation
/// scores everything against, and also the functional behaviour of the
/// CM-CPU/ReSMA baselines.
///
/// # Examples
///
/// ```
/// use asmcap::{AsmMatcher, ExactEdMatcher};
/// use asmcap_genome::DnaSeq;
/// let mut oracle = ExactEdMatcher::new();
/// let a: DnaSeq = "ACGTACGT".parse()?;
/// let b: DnaSeq = "ACGAACGT".parse()?;
/// assert!(oracle.matches(a.as_slice(), b.as_slice(), 1).matched);
/// assert!(!oracle.matches(a.as_slice(), b.as_slice(), 0).matched);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactEdMatcher {
    _private: (),
}

impl ExactEdMatcher {
    /// Creates the oracle matcher.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl AsmMatcher for ExactEdMatcher {
    fn matches(&mut self, segment: &[Base], read: &[Base], threshold: usize) -> MatchOutcome {
        MatchOutcome::plain(edit_distance_banded(segment, read, threshold).is_some())
    }

    fn matches_packed(
        &mut self,
        segment: &PackedSeq,
        read: &PackedSeq,
        threshold: usize,
    ) -> MatchOutcome {
        MatchOutcome::plain(edit_distance_banded_packed(segment, read, threshold).is_some())
    }

    fn name(&self) -> &str {
        "exact-ED"
    }
}

/// Noiseless ED\* matcher: the pure matching semantics of an EDAM/ASMCap
/// array with ideal sensing. Useful for isolating algorithmic misjudgments
/// from analog noise in tests and ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoiselessEdStarMatcher {
    _private: (),
}

impl NoiselessEdStarMatcher {
    /// Creates the noiseless matcher.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl AsmMatcher for NoiselessEdStarMatcher {
    fn matches(&mut self, segment: &[Base], read: &[Base], threshold: usize) -> MatchOutcome {
        MatchOutcome::plain(ed_star(segment, read) <= threshold)
    }

    fn matches_packed(
        &mut self,
        segment: &PackedSeq,
        read: &PackedSeq,
        threshold: usize,
    ) -> MatchOutcome {
        MatchOutcome::plain(ed_star_packed(segment, read) <= threshold)
    }

    fn name(&self) -> &str {
        "ED* (noiseless)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::DnaSeq;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    #[test]
    fn exact_matcher_is_the_ed_oracle() {
        let mut oracle = ExactEdMatcher::new();
        let a = seq("AGCTGAGA");
        let b = seq("ATCTGCGA"); // ED = 2
        assert!(!oracle.matches(a.as_slice(), b.as_slice(), 1).matched);
        assert!(oracle.matches(a.as_slice(), b.as_slice(), 2).matched);
        assert_eq!(oracle.matches(a.as_slice(), b.as_slice(), 2).cycles, 1);
    }

    #[test]
    fn noiseless_edstar_hides_substitutions() {
        // Stored CAG vs read CGA: both substituted bases are found in the
        // neighbour windows, so ED* = 0 although ED = 2.
        let mut matcher = NoiselessEdStarMatcher::new();
        assert!(
            matcher
                .matches(seq("CAG").as_slice(), seq("CGA").as_slice(), 0)
                .matched
        );
        let mut oracle = ExactEdMatcher::new();
        assert!(
            !oracle
                .matches(seq("CAG").as_slice(), seq("CGA").as_slice(), 0)
                .matched
        );
    }

    #[test]
    fn outcome_plain_constructor() {
        let o = MatchOutcome::plain(true);
        assert!(o.matched && o.cycles == 1 && !o.used_hd && o.rotations == 0);
    }
}
