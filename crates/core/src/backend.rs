//! Pluggable execution engines behind [`crate::AsmcapPipeline`].
//!
//! A [`MappingBackend`] turns one row-width read into candidate reference
//! positions. The pipeline owns batching, sharding, statuses, and statistics;
//! a backend only answers "where does this read match, and what did the
//! search cost". Three implementations ship:
//!
//! * [`DeviceBackend`] — the hardware-faithful path through the simulated
//!   multi-array device (instruction-level cycle and energy accounting);
//! * [`PairBackend`] — the per-pair [`crate::AsmcapEngine`] fast path used
//!   by the accuracy sweeps: statistically equivalent sensing without
//!   materialising arrays (and therefore without an energy model);
//! * [`SoftwareBackend`] — a noiseless pure-software ED\* reference, the
//!   functional ground truth the hardware paths approximate.
//!
//! Backends take `&self` and a **per-read seed**: all mutable state (sensing
//! RNG, rotation registers) is created per call, which is what lets
//! [`crate::AsmcapPipeline::map_batch`] shard reads across threads while
//! staying bit-identical to a sequential run.
//!
//! All three built-in backends run on the packed matchplane: the reference
//! is 2-bit packed once at construction, reads arrive packed through
//! [`MappingBackend::map_packed`], and every distance is computed by the
//! word-parallel kernels in `asmcap-metrics` over zero-copy
//! [`asmcap_genome::SegmentView`]s — no per-segment re-slicing anywhere.
//!
//! They also all honour a prefilter shortlist
//! ([`MappingBackend::map_shortlisted`]): when the pipeline's k-mer
//! prefilter is on, only shortlisted segment starts reach the kernels —
//! the software and pair paths skip unlisted segments outright, and the
//! device path senses only the masked-in rows through
//! [`asmcap_arch::AsmcapDevice::search_packed_masked`].

use crate::mapper::MapperConfig;
use asmcap_arch::{AsmcapDevice, DeviceSearchResult, FaultPlan, MatchMode, RowId, RowMask};
use asmcap_circuit::ChargeDomainCam;
use asmcap_genome::{DnaSeq, PackedRef, PackedSeq};
use asmcap_metrics::ed_star_packed;
use rand::Rng as _;
use std::collections::BTreeMap;

/// What one backend invocation found and what it cost.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BackendOutcome {
    /// Genome origins of all matching stored segments, ascending.
    pub positions: Vec<usize>,
    /// Cycles consumed (1 read latch + 1 per search operation).
    pub cycles: u64,
    /// Search operations issued.
    pub searches: u64,
    /// Energy in joules (0 for backends without a circuit energy model).
    pub energy_j: f64,
    /// Rows where re-sense majority voting fired (0 without fault
    /// injection).
    pub resensed: u64,
    /// Quarantined rows answered by the exact digital fallback (0 without
    /// fault injection).
    pub requarried: u64,
}

/// One execution engine the pipeline can map reads through.
///
/// Implementations must be `Send + Sync`: [`crate::AsmcapPipeline::map_batch`]
/// calls [`MappingBackend::map_seeded`] concurrently from scoped worker
/// threads. All randomness must derive from the passed `seed` so a read's
/// result depends only on `(read, seed)`, never on which worker ran it.
///
/// [`MappingBackend::map_seeded`] is the required method, so a backend that
/// implements nothing fails at compile time. Packed-native backends (all
/// three built-ins) additionally override [`MappingBackend::map_packed`] —
/// the entry point the pipeline calls — and implement `map_seeded` as a
/// pack-and-forward one-liner; slice-based backends implement only
/// `map_seeded` and inherit the unpacking default of `map_packed`.
pub trait MappingBackend: Send + Sync {
    /// Short display name for reports (e.g. `"device"`).
    fn name(&self) -> &'static str;

    /// Row width every read must match exactly (the pipeline truncates or
    /// rejects other lengths before calling in).
    fn row_width(&self) -> usize;

    /// Maps one row-width read with all randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `read.len() != self.row_width()`.
    fn map_seeded(&self, read: &DnaSeq, seed: u64) -> BackendOutcome;

    /// [`MappingBackend::map_seeded`] over an already packed read — the
    /// entry point the pipeline calls (it packs each read exactly once).
    ///
    /// # Panics
    ///
    /// Implementations panic if `read.len() != self.row_width()`.
    fn map_packed(&self, read: &PackedSeq, seed: u64) -> BackendOutcome {
        self.map_seeded(&read.to_seq(), seed)
    }

    /// [`MappingBackend::map_packed`] restricted to a prefilter shortlist:
    /// `candidates` holds segment start offsets (ascending, on the shared
    /// [`segment_starts`] grid) and only those segments may be evaluated.
    ///
    /// The default ignores the shortlist and scans everything — always
    /// correct, so custom backends keep compiling — while the three
    /// built-ins override it: the software and pair paths iterate only the
    /// shortlisted starts, and the device path senses only the masked-in
    /// rows ([`asmcap_arch::AsmcapDevice::search_packed_masked`]). With
    /// every stored start listed, each built-in is byte-identical to
    /// [`MappingBackend::map_packed`], RNG draws included.
    ///
    /// # Panics
    ///
    /// Implementations panic if `read.len() != self.row_width()` or
    /// `candidates` is not sorted ascending.
    fn map_shortlisted(&self, read: &PackedSeq, seed: u64, candidates: &[usize]) -> BackendOutcome {
        let _ = candidates;
        self.map_packed(read, seed)
    }

    /// Maps a whole batch of row-width reads in one call — the entry point
    /// [`crate::AsmcapPipeline::map_batch_packed`] drains each executor
    /// tile through, and the surface a serving coalescer batches for.
    ///
    /// `shortlists[i]` is read `i`'s prefilter shortlist (`None` = full
    /// scan — no prefilter armed, or its fallback fired). The contract is
    /// **byte-identity with the per-read path**: `outcomes[i]` must equal
    /// `map_packed(&reads[i], seeds[i])` when `shortlists[i]` is `None`
    /// and `map_shortlisted(&reads[i], seeds[i], &shortlists[i])`
    /// otherwise — positions, cycle/energy accounting, and RNG draw order
    /// included. The default dispatches read-by-read (trivially
    /// identical); [`DeviceBackend`] overrides it to drain the whole batch
    /// array-by-array through
    /// [`asmcap_arch::AsmcapDevice::search_packed_batch`] /
    /// [`asmcap_arch::AsmcapDevice::search_packed_batch_masked`], whose
    /// per-read byte-identity is pinned at the arch layer.
    ///
    /// # Panics
    ///
    /// Implementations panic if `reads`, `seeds`, and `shortlists` lengths
    /// differ, any read width differs from the row width, or a shortlist
    /// is not sorted ascending.
    fn map_batch_shortlisted(
        &self,
        reads: &[PackedSeq],
        seeds: &[u64],
        shortlists: &[Option<Vec<usize>>],
    ) -> Vec<BackendOutcome> {
        assert_eq!(reads.len(), seeds.len(), "one seed per batched read");
        assert_eq!(
            reads.len(),
            shortlists.len(),
            "one shortlist slot per batched read"
        );
        reads
            .iter()
            .zip(seeds)
            .zip(shortlists)
            .map(|((read, &seed), shortlist)| match shortlist {
                None => self.map_packed(read, seed),
                Some(candidates) => self.map_shortlisted(read, seed, candidates),
            })
            .collect()
    }
}

pub(crate) fn collect(result: &DeviceSearchResult) -> BTreeMap<RowId, usize> {
    result.matches.iter().map(|m| (m.id, m.n_mis)).collect()
}

/// The segment start offsets a `width`-row backend stores for `reference`
/// at `stride` — the one segmentation rule every backend shares (and the
/// device's [`asmcap_arch::AsmcapDevice::store_reference`] follows).
///
/// # Panics
///
/// Panics if `stride` is zero or the reference is shorter than one row.
#[must_use]
pub fn segment_starts(reference: &DnaSeq, width: usize, stride: usize) -> Vec<usize> {
    assert!(stride > 0, "stride must be positive");
    assert!(reference.len() >= width, "reference shorter than one row");
    (0..=reference.len() - width).step_by(stride).collect()
}

/// How many segments [`segment_starts`] would produce, without allocating
/// them — for sizing devices over large references.
///
/// # Panics
///
/// Panics if `stride` is zero or the reference is shorter than one row.
#[must_use]
pub fn segment_count(reference_len: usize, width: usize, stride: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(reference_len >= width, "reference shorter than one row");
    (reference_len - width) / stride + 1
}

/// The hardware-faithful backend: searches through the simulated
/// multi-array device, with HDAC's HD-mode search and TASR's rotated
/// searches issued exactly as the controller would sequence them.
///
/// One hardware-faithful detail carried over from the device path: HDAC
/// draws its random number **once per read** (a host-side draw steering the
/// result MUX for all rows), rather than once per pair.
#[derive(Debug)]
pub struct DeviceBackend {
    device: AsmcapDevice<ChargeDomainCam>,
    config: MapperConfig,
    fault: Option<FaultPlan>,
}

impl DeviceBackend {
    /// Wraps a device that already stores the segmented reference.
    #[must_use]
    pub fn new(device: AsmcapDevice<ChargeDomainCam>, config: MapperConfig) -> Self {
        Self {
            device,
            config,
            fault: None,
        }
    }

    /// Installs `plan` on the wrapped device (instantiation + self-test
    /// quarantine at this backend's threshold) and arms the per-read fault
    /// streams. An inactive plan (e.g. [`FaultPlan::none`]) uninstalls all
    /// fault state, leaving the backend byte-identical to a fresh one.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        self.device.install_faults(plan, self.config.threshold);
        self.fault = plan.is_active().then(|| plan.clone());
    }

    /// The armed fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Quarantined rows across the device (0 without faults).
    #[must_use]
    pub fn quarantined_rows(&self) -> usize {
        self.device.quarantined_rows()
    }

    /// The wrapped device.
    #[must_use]
    pub fn device(&self) -> &AsmcapDevice<ChargeDomainCam> {
        &self.device
    }

    /// The per-read matching configuration.
    #[must_use]
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// One device search, full or row-masked, optionally through the
    /// installed fault model (the caller threads one fault stream per
    /// read across all of that read's searches).
    fn search(
        &self,
        read: &PackedSeq,
        threshold: usize,
        mode: MatchMode,
        mask: Option<&RowMask>,
        rng: &mut crate::Rng,
        fault_rng: Option<&mut crate::Rng>,
    ) -> DeviceSearchResult {
        match (mask, fault_rng) {
            (Some(mask), Some(fault_rng)) => self
                .device
                .search_packed_masked_with_faults(read, threshold, mode, mask, rng, fault_rng),
            (Some(mask), None) => self
                .device
                .search_packed_masked(read, threshold, mode, mask, rng),
            (None, Some(fault_rng)) => self
                .device
                .search_packed_with_faults(read, threshold, mode, rng, fault_rng),
            (None, None) => self.device.search_packed(read, threshold, mode, rng),
        }
    }

    /// The shared body of [`MappingBackend::map_packed`] (no mask) and
    /// [`MappingBackend::map_shortlisted`] (shortlist mask): identical
    /// instruction sequencing either way, so the unmasked call stays
    /// byte-identical to the pre-prefilter path.
    fn run(&self, read: &PackedSeq, seed: u64, mask: Option<&RowMask>) -> BackendOutcome {
        assert_eq!(
            read.len(),
            self.row_width(),
            "read must match the row width"
        );
        let t = self.config.threshold;
        // Same split as the deprecated `ReadMapper`: one stream for sensing
        // noise, one for the host-side HDAC draw. Fault injection adds a
        // third, dedicated stream so the first two keep their draw order.
        let mut sense_rng = crate::rng(seed);
        let mut host_rng = crate::rng(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let mut fault_rng = self.fault.as_ref().map(|plan| plan.read_fault_rng(seed));
        let mut searches = 0u64;
        let mut energy = 0.0f64;
        let mut resensed = 0u64;
        let mut requarried = 0u64;

        // Cycle 1 (after the latch): the ED* search.
        let base = self.search(
            read,
            t,
            MatchMode::EdStar,
            mask,
            &mut sense_rng,
            fault_rng.as_mut(),
        );
        searches += 1;
        energy += base.stats.energy_j;
        resensed += base.stats.resensed;
        requarried += base.stats.requarried;
        let mut matched: BTreeMap<RowId, usize> = collect(&base);

        // HDAC: one HD-mode search, one host-side draw for the result MUX.
        if let Some(hdac) = self.config.hdac {
            if hdac.enabled(&self.config.profile, t) {
                let hd = self.search(
                    read,
                    t,
                    MatchMode::Hamming,
                    mask,
                    &mut sense_rng,
                    fault_rng.as_mut(),
                );
                searches += 1;
                energy += hd.stats.energy_j;
                resensed += hd.stats.resensed;
                requarried += hd.stats.requarried;
                if host_rng.gen::<f64>() < hdac.probability(&self.config.profile, t) {
                    matched = collect(&hd);
                }
            }
        }

        // TASR: N_R rotated ED* searches, OR-ed into the result set. Each
        // rotated read is what the shift register file would present after
        // `amount` single-position rotations — computed word-parallel here.
        if let Some(tasr) = self.config.tasr {
            if tasr.active(&self.config.profile, read.len(), t) {
                for i in 1..=tasr.rotations {
                    let rotated_read = tasr.schedule.rotated_packed(read, i);
                    let rotated = self.search(
                        &rotated_read,
                        t,
                        MatchMode::EdStar,
                        mask,
                        &mut sense_rng,
                        fault_rng.as_mut(),
                    );
                    searches += 1;
                    energy += rotated.stats.energy_j;
                    resensed += rotated.stats.resensed;
                    requarried += rotated.stats.requarried;
                    for (id, n_mis) in collect(&rotated) {
                        matched.entry(id).or_insert(n_mis);
                    }
                }
            }
        }

        let mut positions: Vec<usize> = matched
            .keys()
            .filter_map(|&id| self.device.origin_of(id))
            .collect();
        positions.sort_unstable();
        positions.dedup();
        BackendOutcome {
            positions,
            cycles: 1 + searches,
            searches,
            energy_j: energy,
            resensed,
            requarried,
        }
    }

    /// The shared body of the batch dispatch: the same ED\* → HDAC → TASR
    /// instruction sequencing as [`DeviceBackend::run`], but each stage
    /// drains the **whole read queue** through the device's array-major
    /// batch entry points. Read `i` draws all sensing noise from its own
    /// seed-derived streams in exactly the order the per-read path would,
    /// so `outcomes[i]` is byte-identical to `run(&reads[i], seeds[i], …)`
    /// (pinned by `tests/packed_equivalence.rs` and the arch-layer batch
    /// equivalence tests).
    fn run_batch(
        &self,
        reads: &[PackedSeq],
        seeds: &[u64],
        masks: Option<&[RowMask]>,
    ) -> Vec<BackendOutcome> {
        let t = self.config.threshold;
        // Same stream split as `run`: one sensing stream and one host-side
        // HDAC stream per read, plus one dedicated fault stream per read
        // when a fault plan is armed.
        let mut sense_rngs: Vec<crate::Rng> = seeds.iter().map(|&s| crate::rng(s)).collect();
        let mut host_rngs: Vec<crate::Rng> = seeds
            .iter()
            .map(|&s| crate::rng(s.wrapping_mul(0x9E37_79B9).wrapping_add(1)))
            .collect();
        let mut fault_rngs: Option<Vec<crate::Rng>> = self
            .fault
            .as_ref()
            .map(|plan| seeds.iter().map(|&s| plan.read_fault_rng(s)).collect());
        let search_batch = |queue: &[PackedSeq],
                            mode: MatchMode,
                            rngs: &mut [crate::Rng],
                            fault_rngs: Option<&mut [crate::Rng]>| {
            match (masks, fault_rngs) {
                (Some(masks), Some(fault_rngs)) => {
                    self.device.search_packed_batch_masked_with_faults(
                        queue, t, mode, masks, rngs, fault_rngs,
                    )
                }
                (Some(masks), None) => self
                    .device
                    .search_packed_batch_masked(queue, t, mode, masks, rngs),
                (None, Some(fault_rngs)) => self
                    .device
                    .search_packed_batch_with_faults(queue, t, mode, rngs, fault_rngs),
                (None, None) => self.device.search_packed_batch(queue, t, mode, rngs),
            }
        };

        // Cycle 1 (after the latch): the ED* search, whole queue at once.
        let base = search_batch(
            reads,
            MatchMode::EdStar,
            &mut sense_rngs,
            fault_rngs.as_deref_mut(),
        );
        let mut searches: Vec<u64> = vec![1; reads.len()];
        let mut energy: Vec<f64> = base.iter().map(|r| r.stats.energy_j).collect();
        let mut resensed: Vec<u64> = base.iter().map(|r| r.stats.resensed).collect();
        let mut requarried: Vec<u64> = base.iter().map(|r| r.stats.requarried).collect();
        let mut matched: Vec<BTreeMap<RowId, usize>> = base.iter().map(collect).collect();

        // HDAC: one batched HD-mode search, one host-side draw per read.
        if let Some(hdac) = self.config.hdac {
            if hdac.enabled(&self.config.profile, t) {
                let hd = search_batch(
                    reads,
                    MatchMode::Hamming,
                    &mut sense_rngs,
                    fault_rngs.as_deref_mut(),
                );
                let p = hdac.probability(&self.config.profile, t);
                for (i, result) in hd.iter().enumerate() {
                    searches[i] += 1;
                    energy[i] += result.stats.energy_j;
                    resensed[i] += result.stats.resensed;
                    requarried[i] += result.stats.requarried;
                    if host_rngs[i].gen::<f64>() < p {
                        matched[i] = collect(result);
                    }
                }
            }
        }

        // TASR: each rotation is one batched ED* search over the rotated
        // queue, OR-ed into each read's result set.
        if let Some(tasr) = self.config.tasr {
            if tasr.active(&self.config.profile, self.row_width(), t) {
                for amount in 1..=tasr.rotations {
                    let rotated: Vec<PackedSeq> = reads
                        .iter()
                        .map(|read| tasr.schedule.rotated_packed(read, amount))
                        .collect();
                    let results = search_batch(
                        &rotated,
                        MatchMode::EdStar,
                        &mut sense_rngs,
                        fault_rngs.as_deref_mut(),
                    );
                    for (i, result) in results.iter().enumerate() {
                        searches[i] += 1;
                        energy[i] += result.stats.energy_j;
                        resensed[i] += result.stats.resensed;
                        requarried[i] += result.stats.requarried;
                        for (id, n_mis) in collect(result) {
                            matched[i].entry(id).or_insert(n_mis);
                        }
                    }
                }
            }
        }

        matched
            .into_iter()
            .zip(searches)
            .zip(energy)
            .zip(resensed.into_iter().zip(requarried))
            .map(
                |(((matched, searches), energy_j), (resensed, requarried))| {
                    let mut positions: Vec<usize> = matched
                        .keys()
                        .filter_map(|&id| self.device.origin_of(id))
                        .collect();
                    positions.sort_unstable();
                    positions.dedup();
                    BackendOutcome {
                        positions,
                        cycles: 1 + searches,
                        searches,
                        energy_j,
                        resensed,
                        requarried,
                    }
                },
            )
            .collect()
    }
}

impl MappingBackend for DeviceBackend {
    fn name(&self) -> &'static str {
        "device"
    }

    fn row_width(&self) -> usize {
        self.device.row_width()
    }

    fn map_seeded(&self, read: &DnaSeq, seed: u64) -> BackendOutcome {
        self.map_packed(&PackedSeq::from_seq(read), seed)
    }

    fn map_packed(&self, read: &PackedSeq, seed: u64) -> BackendOutcome {
        self.run(read, seed, None)
    }

    fn map_shortlisted(&self, read: &PackedSeq, seed: u64, candidates: &[usize]) -> BackendOutcome {
        let mask = self.device.mask_for_origins(candidates);
        self.run(read, seed, Some(&mask))
    }

    /// The batch dispatch the issue of serving builds on: an all-full-scan
    /// queue drains unmasked ([`asmcap_arch::AsmcapDevice::search_packed_batch`]);
    /// any shortlisted read switches the queue to the masked drain, with
    /// full-scan reads carrying [`RowMask::full`] (pinned byte-identical
    /// to the unmasked search at the arch layer).
    fn map_batch_shortlisted(
        &self,
        reads: &[PackedSeq],
        seeds: &[u64],
        shortlists: &[Option<Vec<usize>>],
    ) -> Vec<BackendOutcome> {
        assert_eq!(reads.len(), seeds.len(), "one seed per batched read");
        assert_eq!(
            reads.len(),
            shortlists.len(),
            "one shortlist slot per batched read"
        );
        for read in reads {
            assert_eq!(
                read.len(),
                self.row_width(),
                "read must match the row width"
            );
        }
        if reads.is_empty() {
            return Vec::new();
        }
        if shortlists.iter().all(Option::is_none) {
            self.run_batch(reads, seeds, None)
        } else {
            let masks: Vec<RowMask> = shortlists
                .iter()
                .map(|shortlist| match shortlist {
                    None => RowMask::full(self.device.stored_rows()),
                    Some(candidates) => self.device.mask_for_origins(candidates),
                })
                .collect();
            self.run_batch(reads, seeds, Some(&masks))
        }
    }
}

/// The per-pair fast path: one [`crate::AsmcapEngine`] decision per stored
/// segment, with the same ED\* + HDAC + TASR semantics and sensing-noise
/// model as the device but no array bookkeeping — the right backend for
/// large statistical sweeps.
///
/// Cycle accounting models the rows being sensed in parallel (as the
/// hardware would): the read costs the *maximum* per-pair cycle count, not
/// the sum. There is no energy model on this path (`energy_j` is 0).
#[derive(Debug, Clone)]
pub struct PairBackend {
    reference: PackedRef,
    starts: Vec<usize>,
    width: usize,
    config: MapperConfig,
}

impl PairBackend {
    /// Segments `reference` into `width`-base windows every `stride` bases.
    /// The reference is packed once here; each per-pair decision runs on a
    /// zero-copy segment view of that packing.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or the reference is shorter than one row.
    #[must_use]
    pub fn new(reference: DnaSeq, stride: usize, width: usize, config: MapperConfig) -> Self {
        let starts = segment_starts(&reference, width, stride);
        Self {
            reference: PackedRef::new(&reference),
            starts,
            width,
            config,
        }
    }

    /// Number of stored segments.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.starts.len()
    }

    /// One per-pair engine pass over `starts` (the full segment list or a
    /// prefilter shortlist).
    fn run(&self, read: &PackedSeq, seed: u64, starts: &[usize]) -> BackendOutcome {
        assert_eq!(read.len(), self.width, "read must match the row width");
        let mut builder = crate::config::AsmcapConfig::new(self.config.profile);
        builder
            .hdac(self.config.hdac)
            .tasr(self.config.tasr)
            .seed(seed);
        let mut engine = builder.build();
        let t = self.config.threshold;
        let mut positions = Vec::new();
        let mut max_cycles = 0u64;
        for &start in starts {
            let segment = self.reference.segment(start, self.width);
            let outcome = engine.matches_packed(&segment, read, t);
            max_cycles = max_cycles.max(u64::from(outcome.cycles));
            if outcome.matched {
                positions.push(start);
            }
        }
        BackendOutcome {
            positions,
            cycles: 1 + max_cycles,
            searches: max_cycles,
            energy_j: 0.0,
            ..BackendOutcome::default()
        }
    }
}

impl MappingBackend for PairBackend {
    fn name(&self) -> &'static str {
        "pair"
    }

    fn row_width(&self) -> usize {
        self.width
    }

    fn map_seeded(&self, read: &DnaSeq, seed: u64) -> BackendOutcome {
        self.map_packed(&PackedSeq::from_seq(read), seed)
    }

    fn map_packed(&self, read: &PackedSeq, seed: u64) -> BackendOutcome {
        self.run(read, seed, &self.starts)
    }

    fn map_shortlisted(&self, read: &PackedSeq, seed: u64, candidates: &[usize]) -> BackendOutcome {
        // lint: index-ok — windows(2) yields exactly two elements per pair
        debug_assert!(candidates.windows(2).all(|pair| pair[0] < pair[1]));
        self.run(read, seed, candidates)
    }
}

/// The noiseless software reference: a read matches a stored segment iff
/// `ED*(segment, read) <= T`, with ideal sensing and no correction
/// strategies. This is the functional behaviour both hardware backends
/// reduce to when their noise and strategies are stripped away, and the
/// determinism anchor for the backend-equivalence tests.
#[derive(Debug, Clone)]
pub struct SoftwareBackend {
    reference: PackedRef,
    starts: Vec<usize>,
    width: usize,
    threshold: usize,
}

impl SoftwareBackend {
    /// Segments `reference` into `width`-base windows every `stride` bases.
    /// The reference is packed once here; every scan step is a word-parallel
    /// ED\* over a zero-copy segment view.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or the reference is shorter than one row.
    #[must_use]
    pub fn new(reference: DnaSeq, stride: usize, width: usize, threshold: usize) -> Self {
        let starts = segment_starts(&reference, width, stride);
        Self {
            reference: PackedRef::new(&reference),
            starts,
            width,
            threshold,
        }
    }

    /// One noiseless ED\* pass over `starts` (the full segment list or a
    /// prefilter shortlist).
    fn run(&self, read: &PackedSeq, starts: &[usize]) -> BackendOutcome {
        assert_eq!(read.len(), self.width, "read must match the row width");
        let positions = starts
            .iter()
            .copied()
            .filter(|&start| {
                ed_star_packed(&self.reference.segment(start, self.width), read) <= self.threshold
            })
            .collect();
        BackendOutcome {
            positions,
            cycles: 2,
            searches: 1,
            energy_j: 0.0,
            ..BackendOutcome::default()
        }
    }
}

impl MappingBackend for SoftwareBackend {
    fn name(&self) -> &'static str {
        "software"
    }

    fn row_width(&self) -> usize {
        self.width
    }

    fn map_seeded(&self, read: &DnaSeq, seed: u64) -> BackendOutcome {
        self.map_packed(&PackedSeq::from_seq(read), seed)
    }

    fn map_packed(&self, read: &PackedSeq, _seed: u64) -> BackendOutcome {
        self.run(read, &self.starts)
    }

    fn map_shortlisted(
        &self,
        read: &PackedSeq,
        _seed: u64,
        candidates: &[usize],
    ) -> BackendOutcome {
        // lint: index-ok — windows(2) yields exactly two elements per pair
        debug_assert!(candidates.windows(2).all(|pair| pair[0] < pair[1]));
        self.run(read, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_arch::DeviceBuilder;
    use asmcap_genome::GenomeModel;
    use asmcap_metrics::ed_star;

    fn device_for(genome: &DnaSeq, width: usize, stride: usize) -> AsmcapDevice<ChargeDomainCam> {
        let rows = (genome.len() - width) / stride + 1;
        let mut device = DeviceBuilder::new()
            .arrays(rows.div_ceil(64))
            .rows_per_array(64)
            .row_width(width)
            .build_asmcap();
        device.store_reference(genome, stride).unwrap();
        device
    }

    #[test]
    fn device_backend_is_seed_deterministic() {
        let genome = GenomeModel::uniform().generate(2_048, 11);
        let backend = DeviceBackend::new(device_for(&genome, 64, 1), MapperConfig::plain(2));
        let read = genome.window(500..564);
        let a = backend.map_seeded(&read, 42);
        let b = backend.map_seeded(&read, 42);
        assert_eq!(a, b);
        assert!(a.positions.contains(&500));
        assert_eq!(a.cycles, 2); // latch + ED* search
    }

    #[test]
    fn software_backend_is_pure_edstar() {
        let genome = GenomeModel::uniform().generate(1_024, 12);
        let backend = SoftwareBackend::new(genome.clone(), 1, 64, 0);
        let read = genome.window(100..164);
        let out = backend.map_seeded(&read, 0);
        assert!(out.positions.contains(&100));
        for &p in &out.positions {
            assert!(ed_star(genome.window(p..p + 64).as_slice(), read.as_slice()) == 0);
        }
    }

    #[test]
    fn pair_backend_recovers_origins() {
        let genome = GenomeModel::uniform().generate(1_024, 13);
        let backend = PairBackend::new(genome.clone(), 1, 64, MapperConfig::plain(2));
        assert_eq!(backend.segments(), 1_024 - 64 + 1);
        let read = genome.window(300..364);
        let out = backend.map_seeded(&read, 7);
        assert!(out.positions.contains(&300));
        assert_eq!(out.energy_j, 0.0);
        assert!(out.cycles >= 2);
    }
}
