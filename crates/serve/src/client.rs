//! A small blocking client for the wire protocol — used by the load
//! generator, the loopback tests, and anyone scripting against a
//! running server.
//!
//! [`MapClient`] is synchronous and single-threaded: send a request,
//! read frames until the matching reply arrives. For pipelined traffic
//! (many requests in flight) split the stream with
//! [`MapClient::into_split`] and run the sender and receiver on separate
//! threads, matching replies to requests by `req_id` — replies may
//! arrive out of order relative to sends (overload refusals short-cut
//! the queue).

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, HealthReply, OverloadReason, Request, Response, ServerCounters,
    WireError,
};

/// Capped exponential backoff with deterministic jitter, for
/// [`MapClient::map_with_retry`].
///
/// Attempt `n` sleeps `base * 2^n` capped at `cap`, then jittered down
/// into `[backoff/2, backoff]` so a thundering herd of retrying clients
/// decorrelates. The jitter PRNG is a seeded SplitMix64 stream — no
/// ambient randomness, so a test run's retry schedule reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = a plain [`MapClient::map_one`]).
    pub max_retries: u32,
    /// First backoff step.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Seed for the jitter stream; mix the client id in so concurrent
    /// clients spread out.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// 4 retries, 1 ms base, 100 ms cap.
    fn default() -> Self {
        Self {
            max_retries: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry `attempt` (0-based) of `req_id`.
    #[must_use]
    pub fn backoff(&self, attempt: u32, req_id: u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.cap);
        let nanos = u64::try_from(exp.as_nanos()).unwrap_or(u64::MAX);
        let mix = splitmix64(self.jitter_seed ^ req_id.rotate_left(17) ^ u64::from(attempt));
        // Uniform in [nanos/2, nanos].
        let jittered = nanos / 2
            + if nanos / 2 > 0 {
                mix % (nanos / 2 + 1)
            } else {
                0
            };
        Duration::from_nanos(jittered)
    }
}

/// The deterministic jitter mixer (SplitMix64 finalizer). Hand-rolled so
/// this crate stays dependency-free; **never** used for sensing — mapping
/// results only ever draw from the workspace's seeded ChaCha streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What [`MapClient::map_with_retry`] settled on.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryOutcome {
    /// The final response (a map reply, or the last overload if every
    /// retry was refused).
    pub response: Response,
    /// Retries spent (0 = first attempt answered).
    pub retries: u32,
    /// Times the connection was re-established after a timeout-shaped
    /// I/O error.
    pub reconnects: u32,
}

/// A blocking connection to an `asmcap-serve` server.
#[derive(Debug)]
pub struct MapClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: SocketAddr,
}

impl MapClient {
    /// Connects.
    ///
    /// # Errors
    ///
    /// I/O errors from connect/configure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            peer,
        })
    }

    /// Arms (or clears) a receive timeout, after which blocked reads fail
    /// with a timeout-shaped [`WireError::Io`] — the trigger for
    /// [`MapClient::map_with_retry`]'s reconnect path.
    ///
    /// # Errors
    ///
    /// I/O errors from configuring the socket.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Wire-level write failures.
    pub fn send(&mut self, request: &Request) -> Result<(), WireError> {
        write_frame(&mut self.writer, &request.encode())
    }

    /// Reads the next response frame.
    ///
    /// # Errors
    ///
    /// Wire-level read/decode failures ([`WireError::Disconnected`] on a
    /// clean server close).
    pub fn recv(&mut self) -> Result<Response, WireError> {
        Response::decode(&read_frame(&mut self.reader)?)
    }

    /// Maps one read and blocks for its reply: the response whose
    /// `req_id` matches (map reply or overload). Unrelated responses
    /// arriving first are returned as errors by contract violation — a
    /// single-threaded client has nothing else in flight.
    ///
    /// # Errors
    ///
    /// Wire-level failures, or [`WireError::Malformed`] if the server
    /// answers with a response for a different request.
    pub fn map_one(&mut self, req_id: u64, bases: &[u8]) -> Result<Response, WireError> {
        self.send(&Request::Map {
            req_id,
            bases: bases.to_vec(),
        })?;
        let response = self.recv()?;
        let answered = match &response {
            Response::Map(reply) => reply.req_id == req_id,
            Response::Overload { req_id: r, .. } => *r == req_id,
            // Protocol errors answer whatever was just sent.
            Response::ProtocolError { .. } => true,
            Response::Stats(_) | Response::ShutdownAck | Response::Health(_) => false,
        };
        if answered {
            Ok(response)
        } else {
            Err(WireError::Malformed("response for a different request"))
        }
    }

    /// Maps one read with capped-exponential-backoff retries. A
    /// [`OverloadReason::QueueFull`] or [`OverloadReason::Deadline`]
    /// refusal backs off and resends on the same connection; a
    /// timeout-or-reset-shaped I/O error reconnects first (anything else
    /// propagates — the reply stream cannot be trusted after a partial
    /// frame of unknown shape). Returns the final response plus how much
    /// retrying it took; retries exhausted returns the last overload as
    /// the response, not an error.
    ///
    /// # Errors
    ///
    /// Non-retryable wire failures, or any failure once retries are
    /// exhausted.
    pub fn map_with_retry(
        &mut self,
        req_id: u64,
        bases: &[u8],
        policy: &RetryPolicy,
    ) -> Result<RetryOutcome, WireError> {
        let mut retries = 0u32;
        let mut reconnects = 0u32;
        loop {
            let retryable = match self.map_one(req_id, bases) {
                Ok(Response::Overload {
                    reason: OverloadReason::QueueFull | OverloadReason::Deadline,
                    ..
                }) if retries < policy.max_retries => None,
                Ok(response) => {
                    return Ok(RetryOutcome {
                        response,
                        retries,
                        reconnects,
                    })
                }
                Err(WireError::Io(kind)) if retries < policy.max_retries => Some(kind),
                Err(error) => return Err(error),
            };
            if let Some(kind) = retryable {
                match kind {
                    io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe => {
                        *self = MapClient::connect(self.peer).map_err(WireError::from)?;
                        reconnects += 1;
                    }
                    other => return Err(WireError::Io(other)),
                }
            }
            std::thread::sleep(policy.backoff(retries, req_id));
            retries += 1;
        }
    }

    /// Fetches the server's readiness/degradation snapshot.
    ///
    /// # Errors
    ///
    /// Wire-level failures, or [`WireError::Malformed`] on a non-health
    /// response.
    pub fn health(&mut self) -> Result<HealthReply, WireError> {
        self.send(&Request::Health)?;
        match self.recv()? {
            Response::Health(health) => Ok(health),
            _ => Err(WireError::Malformed("expected a health response")),
        }
    }

    /// Fetches the server's aggregate counters.
    ///
    /// # Errors
    ///
    /// Wire-level failures, or [`WireError::Malformed`] on a non-stats
    /// response.
    pub fn stats(&mut self) -> Result<ServerCounters, WireError> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(counters) => Ok(counters),
            _ => Err(WireError::Malformed("expected a stats response")),
        }
    }

    /// Asks the server to shut down and waits for the acknowledgement.
    ///
    /// # Errors
    ///
    /// Wire-level failures, or [`WireError::Malformed`] if the server
    /// refuses (remote shutdown not allowed).
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShutdownAck => Ok(()),
            _ => Err(WireError::Malformed("expected a shutdown acknowledgement")),
        }
    }

    /// Splits into independently-owned send and receive halves for
    /// pipelined traffic from two threads. The send half is **buffered**:
    /// call [`SendHalf::flush`] to push queued frames to the wire.
    ///
    /// # Errors
    ///
    /// I/O errors from duplicating the socket handle.
    pub fn into_split(self) -> io::Result<(SendHalf, RecvHalf)> {
        Ok((
            SendHalf {
                stream: BufWriter::new(self.writer),
            },
            RecvHalf {
                stream: self.reader,
            },
        ))
    }
}

/// The buffered sending half of a split [`MapClient`].
#[derive(Debug)]
pub struct SendHalf {
    stream: BufWriter<TcpStream>,
}

impl SendHalf {
    /// Queues one request frame in the send buffer ([`SendHalf::flush`]
    /// pushes it to the wire).
    ///
    /// # Errors
    ///
    /// Wire-level write failures.
    pub fn send(&mut self, request: &Request) -> Result<(), WireError> {
        write_frame(&mut self.stream, &request.encode())
    }

    /// Queues an already-framed request produced by
    /// [`Request::encode_framed`] — the zero-encode path for pre-built
    /// request streams.
    ///
    /// # Errors
    ///
    /// I/O errors from the buffered write.
    pub fn send_framed(&mut self, framed: &[u8]) -> io::Result<()> {
        self.stream.write_all(framed)
    }

    /// Flushes buffered frames to the socket.
    ///
    /// # Errors
    ///
    /// I/O errors from the flush.
    pub fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }

    /// Flushes, then half-closes the write side, telling the server this
    /// client is done sending (its reader sees EOF once queued frames
    /// drain).
    ///
    /// # Errors
    ///
    /// I/O errors from the flush or socket shutdown.
    pub fn finish(&mut self) -> io::Result<()> {
        self.stream.flush()?;
        self.stream.get_ref().shutdown(Shutdown::Write)
    }

    /// Shuts both socket halves immediately, **without** flushing — the
    /// chaos-testing path for a client that vanishes mid-conversation
    /// (possibly mid-frame).
    ///
    /// # Errors
    ///
    /// I/O errors from the socket shutdown.
    pub fn abort(&mut self) -> io::Result<()> {
        self.stream.get_ref().shutdown(Shutdown::Both)
    }
}

/// The buffered receiving half of a split [`MapClient`].
#[derive(Debug)]
pub struct RecvHalf {
    stream: BufReader<TcpStream>,
}

impl RecvHalf {
    /// Reads the next response frame.
    ///
    /// # Errors
    ///
    /// Wire-level read/decode failures.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        Response::decode(&read_frame(&mut self.stream)?)
    }

    /// Arms (or clears) a receive timeout so a receiver can poll instead
    /// of blocking forever on a peer that stopped answering.
    ///
    /// # Errors
    ///
    /// I/O errors from configuring the socket.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.get_ref().set_read_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_jittered_and_deterministic() {
        let policy = RetryPolicy::default();
        for attempt in 0..8 {
            let sleep = policy.backoff(attempt, 42);
            let exp = policy
                .base
                .saturating_mul(1 << attempt.min(16))
                .min(policy.cap);
            assert!(sleep <= exp, "attempt {attempt}: {sleep:?} > {exp:?}");
            assert!(sleep >= exp / 2, "attempt {attempt}: {sleep:?} < half");
            assert_eq!(
                sleep,
                policy.backoff(attempt, 42),
                "same inputs, same sleep"
            );
        }
        // Different requests decorrelate.
        assert_ne!(policy.backoff(3, 1), policy.backoff(3, 2));
        // The cap holds even at absurd attempt counts.
        assert!(policy.backoff(63, 7) <= policy.cap);
    }
}
