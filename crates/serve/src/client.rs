//! A small blocking client for the wire protocol — used by the load
//! generator, the loopback tests, and anyone scripting against a
//! running server.
//!
//! [`MapClient`] is synchronous and single-threaded: send a request,
//! read frames until the matching reply arrives. For pipelined traffic
//! (many requests in flight) split the stream with
//! [`MapClient::into_split`] and run the sender and receiver on separate
//! threads, matching replies to requests by `req_id` — replies may
//! arrive out of order relative to sends (overload refusals short-cut
//! the queue).

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

use crate::protocol::{read_frame, write_frame, Request, Response, ServerCounters, WireError};

/// A blocking connection to an `asmcap-serve` server.
#[derive(Debug)]
pub struct MapClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl MapClient {
    /// Connects.
    ///
    /// # Errors
    ///
    /// I/O errors from connect/configure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Wire-level write failures.
    pub fn send(&mut self, request: &Request) -> Result<(), WireError> {
        write_frame(&mut self.writer, &request.encode())
    }

    /// Reads the next response frame.
    ///
    /// # Errors
    ///
    /// Wire-level read/decode failures ([`WireError::Disconnected`] on a
    /// clean server close).
    pub fn recv(&mut self) -> Result<Response, WireError> {
        Response::decode(&read_frame(&mut self.reader)?)
    }

    /// Maps one read and blocks for its reply: the response whose
    /// `req_id` matches (map reply or overload). Unrelated responses
    /// arriving first are returned as errors by contract violation — a
    /// single-threaded client has nothing else in flight.
    ///
    /// # Errors
    ///
    /// Wire-level failures, or [`WireError::Malformed`] if the server
    /// answers with a response for a different request.
    pub fn map_one(&mut self, req_id: u64, bases: &[u8]) -> Result<Response, WireError> {
        self.send(&Request::Map {
            req_id,
            bases: bases.to_vec(),
        })?;
        let response = self.recv()?;
        let answered = match &response {
            Response::Map(reply) => reply.req_id == req_id,
            Response::Overload { req_id: r, .. } => *r == req_id,
            // Protocol errors answer whatever was just sent.
            Response::ProtocolError { .. } => true,
            Response::Stats(_) | Response::ShutdownAck => false,
        };
        if answered {
            Ok(response)
        } else {
            Err(WireError::Malformed("response for a different request"))
        }
    }

    /// Fetches the server's aggregate counters.
    ///
    /// # Errors
    ///
    /// Wire-level failures, or [`WireError::Malformed`] on a non-stats
    /// response.
    pub fn stats(&mut self) -> Result<ServerCounters, WireError> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(counters) => Ok(counters),
            _ => Err(WireError::Malformed("expected a stats response")),
        }
    }

    /// Asks the server to shut down and waits for the acknowledgement.
    ///
    /// # Errors
    ///
    /// Wire-level failures, or [`WireError::Malformed`] if the server
    /// refuses (remote shutdown not allowed).
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShutdownAck => Ok(()),
            _ => Err(WireError::Malformed("expected a shutdown acknowledgement")),
        }
    }

    /// Splits into independently-owned send and receive halves for
    /// pipelined traffic from two threads. The send half is **buffered**:
    /// call [`SendHalf::flush`] to push queued frames to the wire.
    ///
    /// # Errors
    ///
    /// I/O errors from duplicating the socket handle.
    pub fn into_split(self) -> io::Result<(SendHalf, RecvHalf)> {
        Ok((
            SendHalf {
                stream: BufWriter::new(self.writer),
            },
            RecvHalf {
                stream: self.reader,
            },
        ))
    }
}

/// The buffered sending half of a split [`MapClient`].
#[derive(Debug)]
pub struct SendHalf {
    stream: BufWriter<TcpStream>,
}

impl SendHalf {
    /// Queues one request frame in the send buffer ([`SendHalf::flush`]
    /// pushes it to the wire).
    ///
    /// # Errors
    ///
    /// Wire-level write failures.
    pub fn send(&mut self, request: &Request) -> Result<(), WireError> {
        write_frame(&mut self.stream, &request.encode())
    }

    /// Queues an already-framed request produced by
    /// [`Request::encode_framed`] — the zero-encode path for pre-built
    /// request streams.
    ///
    /// # Errors
    ///
    /// I/O errors from the buffered write.
    pub fn send_framed(&mut self, framed: &[u8]) -> io::Result<()> {
        self.stream.write_all(framed)
    }

    /// Flushes buffered frames to the socket.
    ///
    /// # Errors
    ///
    /// I/O errors from the flush.
    pub fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }

    /// Flushes, then half-closes the write side, telling the server this
    /// client is done sending (its reader sees EOF once queued frames
    /// drain).
    ///
    /// # Errors
    ///
    /// I/O errors from the flush or socket shutdown.
    pub fn finish(&mut self) -> io::Result<()> {
        self.stream.flush()?;
        self.stream.get_ref().shutdown(Shutdown::Write)
    }
}

/// The buffered receiving half of a split [`MapClient`].
#[derive(Debug)]
pub struct RecvHalf {
    stream: BufReader<TcpStream>,
}

impl RecvHalf {
    /// Reads the next response frame.
    ///
    /// # Errors
    ///
    /// Wire-level read/decode failures.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        Response::decode(&read_frame(&mut self.stream)?)
    }
}
