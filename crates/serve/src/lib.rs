//! Mapping-as-a-service over the ASMCap batch core.
//!
//! `asmcap-serve` turns an [`asmcap::AsmcapPipeline`] into a network
//! service: many concurrent clients send reads over a length-prefixed
//! binary TCP protocol, the server coalesces them into dense batches,
//! drains each batch through the pipeline's array-major device dispatch,
//! and streams per-request results (positions, cycles, searches, energy,
//! queue/service latency) back. Zero dependencies beyond the workspace —
//! std TCP and threads only.
//!
//! The crate splits along the data path:
//!
//! - [`protocol`] — the wire format: framing, opcodes, typed
//!   [`protocol::WireError`]s. Decoding is total; hostile bytes produce
//!   errors, never panics.
//! - [`coalescer`] — admission control (bounded queue), graceful
//!   degradation (shed full-scan reads first under load), per-client
//!   round-robin fairness, and partial-batch flush timeouts.
//! - [`server`] — the accept/reader/executor thread model and shutdown
//!   choreography.
//! - [`client`] — a small blocking client used by the load generator
//!   and the loopback tests.
//! - [`perf`] — latency histograms and the crate's one timing-allowed
//!   path.
//!
//! # Determinism
//!
//! The serving layer inherits the pipeline's determinism rule and keys
//! it off the **client-supplied request id**: request `r`'s sensing seed
//! is [`asmcap::read_seed`]`(pipeline_seed, r)` via
//! [`asmcap::AsmcapPipeline::map_batch_packed_indexed`]. Arrival order,
//! batch assembly, flush timing, and worker count therefore change
//! throughput and latency but never a single reply byte
//! (`tests/coalescer_determinism.rs` pins this).
//!
//! # Quickstart
//!
//! ```
//! use asmcap::{AsmcapPipeline, PipelineConfig};
//! use asmcap_genome::GenomeModel;
//! use asmcap_serve::{MapClient, Response, Server, ServerConfig, WireStatus};
//!
//! // A small pipeline and a loopback server on an ephemeral port.
//! let genome = GenomeModel::uniform().generate(2_048, 7);
//! let pipeline = AsmcapPipeline::builder()
//!     .reference(genome.clone())
//!     .config(PipelineConfig {
//!         threshold: 2,
//!         row_width: 64,
//!         stride: 16,
//!         ..PipelineConfig::default()
//!     })
//!     .build()
//!     .expect("valid demo pipeline");
//! let server = Server::spawn(pipeline, ServerConfig::default()).expect("loopback bind");
//!
//! // Map one read drawn straight from the reference.
//! let bases: String = genome.window(320..384).to_string();
//! let mut client = MapClient::connect(server.local_addr()).expect("loopback connect");
//! let reply = client.map_one(42, bases.as_bytes()).expect("server reply");
//! match reply {
//!     Response::Map(reply) => {
//!         assert_eq!(reply.req_id, 42);
//!         assert_eq!(reply.status, WireStatus::Mapped);
//!         assert!(reply.positions.contains(&320));
//!     }
//!     other => panic!("unexpected response: {other:?}"),
//! }
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]

pub mod client;
pub mod coalescer;
pub mod perf;
pub mod protocol;
pub mod server;

pub use client::{MapClient, RecvHalf, RetryOutcome, RetryPolicy, SendHalf};
pub use coalescer::{Admission, Coalescer, CoalescerConfig, Drain, Pending};
pub use perf::{LatencyHistogram, LatencySummary};
pub use protocol::{
    error_code, read_frame, write_frame, HealthReply, MapReply, OverloadReason, Request, Response,
    ServerCounters, WireError, WireStatus, MAX_FRAME,
};
pub use server::{Server, ServerConfig};
