//! Request coalescing: many asynchronous client streams in, dense
//! batches out.
//!
//! The [`Coalescer`] is the server's admission point. Reader threads
//! [`Coalescer::offer`] one [`Pending`] request at a time; the single
//! executor thread blocks in [`Coalescer::next_batch`] until a batch is
//! worth draining, then runs it through the pipeline. Three policies live
//! here:
//!
//! - **Admission control / backpressure.** The queue is bounded by
//!   [`CoalescerConfig::queue_cap`]; an offer beyond it is refused with
//!   [`Admission::QueueFull`] and the server answers a typed overload
//!   response instead of buffering without limit.
//! - **Graceful degradation.** Above [`CoalescerConfig::shed_watermark`]
//!   the coalescer sheds the most expensive class first: reads whose
//!   prefilter shortlist falls back to a full reference scan are refused
//!   with [`Admission::Shed`] while cheap shortlisted reads still board.
//!   The (potentially costly) classification runs lazily — only when the
//!   queue is actually above the watermark.
//! - **Per-client fairness.** Requests queue per client and batches are
//!   assembled round-robin, one read per client per turn, resuming after
//!   the last-served client. A client blasting 10k requests cannot starve
//!   a client sending one.
//!
//! # Determinism
//!
//! Batch assembly is timing-dependent (arrival order, flush deadlines) —
//! deliberately so. It can never change mapping *results*, because each
//! request's sensing seed derives from its request id via
//! [`asmcap::read_seed`], not from its batch or position
//! (`crates/serve/tests/coalescer_determinism.rs` pins this). Timing here
//! steers only *grouping*, which is why the `Instant` uses below are
//! annotated rather than forbidden.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use asmcap_genome::PackedSeq;

/// Sizing and policy knobs for a [`Coalescer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescerConfig {
    /// Hard cap on queued requests; offers beyond it get
    /// [`Admission::QueueFull`].
    pub queue_cap: usize,
    /// Queue depth at which full-scan-fallback reads start being refused
    /// with [`Admission::Shed`]. Set `>= queue_cap` to disable shedding.
    pub shed_watermark: usize,
    /// Largest batch [`Coalescer::next_batch`] assembles.
    pub batch_max: usize,
    /// How long a partial batch may wait for company before it is flushed
    /// anyway. Bounds queueing latency under light load.
    pub flush_timeout: Duration,
    /// Per-request queueing deadline. A request that has waited longer
    /// than this when its batch is drained is answered with a typed
    /// deadline overload instead of being mapped (see
    /// [`Coalescer::next_drain`]). `None` disables expiry. Deadlines are
    /// checked at drain time, so they should sit well above
    /// `flush_timeout` to be meaningful.
    pub deadline: Option<Duration>,
}

impl Default for CoalescerConfig {
    /// 4096-deep queue, shedding above 3072, 256-read batches, 500 µs
    /// flush, no deadline.
    fn default() -> Self {
        Self {
            queue_cap: 4096,
            shed_watermark: 3072,
            batch_max: 256,
            flush_timeout: Duration::from_micros(500),
            deadline: None,
        }
    }
}

/// One admitted-or-not map request. `T` is a caller-owned tag carried
/// through to the drained batch (the server threads a per-connection
/// reply handle; tests use `()`).
#[derive(Debug)]
pub struct Pending<T> {
    /// Connection id, the fairness key.
    pub client: u64,
    /// Client-chosen request id — the determinism key downstream.
    pub req_id: u64,
    /// The packed, exactly-row-width-or-longer read.
    pub read: PackedSeq,
    /// When the request entered the queue (for queue-latency reporting).
    pub enqueued: Instant,
    /// Caller-owned payload.
    pub tag: T,
}

/// The verdict [`Coalescer::offer`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued; a future batch will carry it.
    Enqueued,
    /// Refused: the queue is at [`CoalescerConfig::queue_cap`].
    QueueFull,
    /// Refused: the queue is above [`CoalescerConfig::shed_watermark`]
    /// and this read would need a full reference scan.
    Shed,
    /// Refused: [`Coalescer::close`] has been called.
    Closed,
}

/// What one [`Coalescer::next_drain`] call hands the executor: the live
/// batch to map, plus any requests whose deadline expired in the queue
/// (to be answered with a typed overload, never silently dropped).
#[derive(Debug)]
pub struct Drain<T> {
    /// Requests still inside their deadline, round-robin fair.
    pub batch: Vec<Pending<T>>,
    /// Requests that outlived [`CoalescerConfig::deadline`] in the queue.
    /// Always empty when no deadline is configured.
    pub expired: Vec<Pending<T>>,
}

#[derive(Debug)]
struct State<T> {
    /// Per-client FIFO queues, keyed by connection id. A `BTreeMap` so
    /// the round-robin order is the deterministic client-id order, not a
    /// hash order.
    queues: BTreeMap<u64, VecDeque<Pending<T>>>,
    /// Total queued across all clients (kept, not recomputed).
    len: usize,
    /// The client id served last; the next batch resumes *after* it.
    resume_after: u64,
    closed: bool,
}

/// The bounded, fair, flush-on-timeout request queue. See the
/// [module docs](self) for the three policies it implements.
#[derive(Debug)]
pub struct Coalescer<T> {
    state: Mutex<State<T>>,
    wakeup: Condvar,
    config: CoalescerConfig,
}

impl<T> Coalescer<T> {
    /// An empty coalescer with the given policy knobs (`batch_max` and
    /// `queue_cap` are clamped to at least 1).
    #[must_use]
    pub fn new(mut config: CoalescerConfig) -> Self {
        config.batch_max = config.batch_max.max(1);
        config.queue_cap = config.queue_cap.max(1);
        Self {
            state: Mutex::new(State {
                queues: BTreeMap::new(),
                len: 0,
                resume_after: 0,
                closed: false,
            }),
            wakeup: Condvar::new(),
            config,
        }
    }

    /// The policy knobs this coalescer runs with.
    #[must_use]
    pub fn config(&self) -> CoalescerConfig {
        self.config
    }

    /// Current queue depth.
    ///
    /// # Panics
    ///
    /// Panics if a thread panicked while holding the queue lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("coalescer lock poisoned").len
    }

    /// Whether the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if a thread panicked while holding the queue lock.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offers one request. `is_full_scan` classifies the read's cost for
    /// the shed policy; it is invoked **only** when the queue is above the
    /// shed watermark, so the common uncongested path never pays for a
    /// prefilter probe.
    ///
    /// # Panics
    ///
    /// Panics if a thread panicked while holding the queue lock.
    pub fn offer(&self, pending: Pending<T>, is_full_scan: impl FnOnce() -> bool) -> Admission {
        let mut state = self.state.lock().expect("coalescer lock poisoned");
        if state.closed {
            return Admission::Closed;
        }
        if state.len >= self.config.queue_cap {
            return Admission::QueueFull;
        }
        if state.len >= self.config.shed_watermark && is_full_scan() {
            return Admission::Shed;
        }
        state
            .queues
            .entry(pending.client)
            .or_default()
            .push_back(pending);
        state.len += 1;
        drop(state);
        self.wakeup.notify_one();
        Admission::Enqueued
    }

    /// Blocks until a batch is ready and returns it, or `None` once the
    /// coalescer is closed **and** drained. Convenience wrapper over
    /// [`Coalescer::next_drain`] for deadline-free configurations; with a
    /// deadline configured, expired requests are **discarded** here — use
    /// `next_drain` so they can be answered.
    ///
    /// # Panics
    ///
    /// Panics if a thread panicked while holding the queue lock.
    pub fn next_batch(&self) -> Option<Vec<Pending<T>>> {
        self.next_drain().map(|drain| drain.batch)
    }

    /// Blocks until a batch is ready and returns it together with any
    /// deadline-expired requests, or `None` once the coalescer is closed
    /// **and** drained (requests queued before [`Coalescer::close`] still
    /// come out).
    ///
    /// A batch is ready when `batch_max` requests are queued, or when the
    /// oldest queued request has waited `flush_timeout` — whichever comes
    /// first. Assembly is round-robin one-per-client (see the
    /// [module docs](self)); expired requests do not count against
    /// `batch_max`.
    ///
    /// # Panics
    ///
    /// Panics if a thread panicked while holding the queue lock.
    pub fn next_drain(&self) -> Option<Drain<T>> {
        let mut state = self.state.lock().expect("coalescer lock poisoned");
        loop {
            if state.len >= self.config.batch_max || (state.closed && state.len > 0) {
                return Some(self.assemble(&mut state));
            }
            if state.closed {
                return None;
            }
            if state.len == 0 {
                state = self.wakeup.wait(state).expect("coalescer lock poisoned");
                continue;
            }
            // A partial batch is waiting: flush once the oldest request
            // has been queued for `flush_timeout`.
            let oldest = Self::oldest_enqueue(&state);
            // lint: timing-ok — flush pacing only; per-request seeds come
            // from request ids, so batch timing cannot change results.
            let waited = Instant::now().saturating_duration_since(oldest);
            if waited >= self.config.flush_timeout {
                return Some(self.assemble(&mut state));
            }
            let (next, _timeout) = self
                .wakeup
                .wait_timeout(state, self.config.flush_timeout - waited)
                .expect("coalescer lock poisoned");
            state = next;
        }
    }

    /// Closes the queue: future offers get [`Admission::Closed`], blocked
    /// [`Coalescer::next_batch`] callers drain what is queued and then
    /// observe `None`.
    ///
    /// # Panics
    ///
    /// Panics if a thread panicked while holding the queue lock.
    pub fn close(&self) {
        self.state.lock().expect("coalescer lock poisoned").closed = true;
        self.wakeup.notify_all();
    }

    /// When the oldest queued request was enqueued. Caller guarantees the
    /// queue is non-empty.
    fn oldest_enqueue(state: &State<T>) -> Instant {
        state
            .queues
            .values()
            .filter_map(|q| q.front())
            .map(|p| p.enqueued)
            .min()
            .expect("oldest_enqueue called on a non-empty queue")
    }

    /// Takes up to `batch_max` live requests round-robin, one per client
    /// per turn, resuming after the last-served client id. Clients emptied
    /// along the way are dropped from the map. Requests past the
    /// configured deadline are diverted to [`Drain::expired`] without
    /// counting against the cap.
    fn assemble(&self, state: &mut State<T>) -> Drain<T> {
        let cap = self.config.batch_max;
        // lint: timing-ok — expiry steers only which requests get a typed
        // deadline answer, never a mapped read's result.
        let now = Instant::now();
        let deadline = self.config.deadline;
        let mut batch = Vec::with_capacity(cap.min(state.len));
        let mut expired = Vec::new();
        while batch.len() < cap && state.len > 0 {
            // One full round: every client with queued work contributes
            // one read, in client-id order starting after `resume_after`.
            let round: Vec<u64> = state
                .queues
                .range((
                    std::ops::Bound::Excluded(state.resume_after),
                    std::ops::Bound::Unbounded,
                ))
                .map(|(&client, _)| client)
                .chain(
                    state
                        .queues
                        .range(..=state.resume_after)
                        .map(|(&client, _)| client),
                )
                .collect();
            for client in round {
                if batch.len() >= cap {
                    break;
                }
                let Some(queue) = state.queues.get_mut(&client) else {
                    continue;
                };
                let Some(pending) = queue.pop_front() else {
                    continue;
                };
                if queue.is_empty() {
                    state.queues.remove(&client);
                }
                state.len -= 1;
                state.resume_after = client;
                let is_expired =
                    deadline.is_some_and(|d| now.saturating_duration_since(pending.enqueued) > d);
                if is_expired {
                    expired.push(pending);
                } else {
                    batch.push(pending);
                }
            }
        }
        Drain { batch, expired }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(client: u64, req_id: u64) -> Pending<()> {
        let seq = asmcap_genome::DnaSeq::from_bytes(b"ACGT").expect("ACGT parses");
        Pending {
            client,
            req_id,
            read: PackedSeq::from_seq(&seq),
            enqueued: Instant::now(),
            tag: (),
        }
    }

    fn config(queue_cap: usize, shed: usize, batch_max: usize) -> CoalescerConfig {
        CoalescerConfig {
            queue_cap,
            shed_watermark: shed,
            batch_max,
            flush_timeout: Duration::from_millis(5),
            deadline: None,
        }
    }

    #[test]
    fn bounded_queue_refuses_beyond_cap() {
        let c: Coalescer<()> = Coalescer::new(config(2, 2, 8));
        assert_eq!(c.offer(pending(1, 0), || false), Admission::Enqueued);
        assert_eq!(c.offer(pending(1, 1), || false), Admission::Enqueued);
        assert_eq!(c.offer(pending(1, 2), || false), Admission::QueueFull);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn full_scan_reads_shed_above_watermark_only() {
        let c: Coalescer<()> = Coalescer::new(config(8, 2, 8));
        // Below the watermark the classifier must not even run.
        assert_eq!(
            c.offer(pending(1, 0), || panic!("classified below watermark")),
            Admission::Enqueued
        );
        assert_eq!(c.offer(pending(1, 1), || true), Admission::Enqueued);
        // At the watermark: expensive reads shed, cheap reads board.
        assert_eq!(c.offer(pending(1, 2), || true), Admission::Shed);
        assert_eq!(c.offer(pending(1, 3), || false), Admission::Enqueued);
    }

    #[test]
    fn batches_are_round_robin_fair_across_clients() {
        let c: Coalescer<()> = Coalescer::new(config(64, 64, 4));
        // Client 1 floods; clients 2 and 3 send one each.
        for req in 0..6 {
            assert_eq!(c.offer(pending(1, req), || false), Admission::Enqueued);
        }
        assert_eq!(c.offer(pending(2, 100), || false), Admission::Enqueued);
        assert_eq!(c.offer(pending(3, 200), || false), Admission::Enqueued);
        let batch = c.next_batch().expect("batch ready");
        let clients: Vec<u64> = batch.iter().map(|p| p.client).collect();
        // One per client per round: 1, 2, 3, then back to 1.
        assert_eq!(clients, vec![1, 2, 3, 1]);
        // FIFO within a client.
        assert_eq!(batch[0].req_id, 0); // lint: index-ok — asserted 4 long above
        assert_eq!(batch[3].req_id, 1); // lint: index-ok — asserted 4 long above
                                        // The next batch resumes after client 1: 2 and 3 are drained, so
                                        // client 1's remaining reads flow.
        let batch = c.next_batch().expect("second batch ready");
        let ids: Vec<u64> = batch.iter().map(|p| p.req_id).collect();
        assert_eq!(ids, vec![2, 3, 4, 5]);
    }

    #[test]
    fn partial_batch_flushes_after_timeout() {
        let c: Coalescer<()> = Coalescer::new(config(64, 64, 1000));
        assert_eq!(c.offer(pending(1, 7), || false), Admission::Enqueued);
        let start = Instant::now();
        let batch = c.next_batch().expect("flush fires");
        assert_eq!(batch.len(), 1);
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn expired_requests_are_diverted_not_dropped() {
        let c: Coalescer<()> = Coalescer::new(CoalescerConfig {
            deadline: Some(Duration::from_millis(1)),
            ..config(64, 64, 4)
        });
        // One request ages past the deadline; a fresh one does not.
        let mut stale = pending(1, 0);
        stale.enqueued = Instant::now() - Duration::from_millis(50);
        assert_eq!(c.offer(stale, || false), Admission::Enqueued);
        assert_eq!(c.offer(pending(2, 1), || false), Admission::Enqueued);
        let drain = c.next_drain().expect("drain ready");
        assert_eq!(drain.batch.len(), 1);
        assert_eq!(drain.batch[0].req_id, 1); // lint: index-ok — asserted 1 long above
        assert_eq!(drain.expired.len(), 1);
        assert_eq!(drain.expired[0].req_id, 0); // lint: index-ok — asserted 1 long above
        assert!(c.is_empty(), "expired entries leave the queue");
    }

    #[test]
    fn no_deadline_means_nothing_expires() {
        let c: Coalescer<()> = Coalescer::new(config(64, 64, 4));
        let mut stale = pending(1, 0);
        stale.enqueued = Instant::now() - Duration::from_secs(3600);
        assert_eq!(c.offer(stale, || false), Admission::Enqueued);
        let drain = c.next_drain().expect("drain ready");
        assert_eq!(drain.batch.len(), 1);
        assert!(drain.expired.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let c: Coalescer<()> = Coalescer::new(config(64, 64, 1000));
        assert_eq!(c.offer(pending(1, 0), || false), Admission::Enqueued);
        c.close();
        assert_eq!(c.offer(pending(1, 1), || false), Admission::Closed);
        assert_eq!(c.next_batch().expect("drain queued work").len(), 1);
        assert!(c.next_batch().is_none());
    }
}
