//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message travels as one **frame**: a little-endian `u32` payload
//! length followed by that many payload bytes. The first payload byte is
//! the opcode; client→server opcodes sit below `0x80`, server→client
//! opcodes at or above it. All integers are little-endian; there is no
//! padding and no alignment.
//!
//! | opcode | direction | message |
//! |--------|-----------|---------|
//! | `0x01` | c → s | [`Request::Map`] — `req_id: u64`, then ASCII bases |
//! | `0x02` | c → s | [`Request::Stats`] |
//! | `0x03` | c → s | [`Request::Shutdown`] |
//! | `0x04` | c → s | [`Request::Health`] |
//! | `0x81` | s → c | [`Response::Map`] — see [`MapReply`] |
//! | `0x82` | s → c | [`Response::Overload`] — `req_id: u64`, `reason: u8` |
//! | `0x83` | s → c | [`Response::ProtocolError`] — `code: u8`, UTF-8 detail |
//! | `0x84` | s → c | [`Response::Stats`] — see [`ServerCounters`] |
//! | `0x85` | s → c | [`Response::ShutdownAck`] |
//! | `0x86` | s → c | [`Response::Health`] — see [`HealthReply`] |
//!
//! # Robustness contract
//!
//! Decoding is **total**: every byte sequence either decodes or produces a
//! typed [`WireError`] — truncated frames, oversized length prefixes,
//! unknown opcodes, short payloads, and non-`ACGT` bases are all errors,
//! never panics. The server answers a malformed frame with
//! [`Response::ProtocolError`] and closes the connection; it never takes
//! the process down (`tests/protocol_robustness.rs` pins this, and the
//! workspace panic-policy lint covers this crate).

use std::fmt;
use std::io::{Read, Write};

/// Hard ceiling on one frame's payload size. A length prefix above this is
/// rejected before any allocation, so a hostile 4-GiB prefix cannot turn
/// into a 4-GiB buffer.
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame could not be read, decoded, or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection cleanly (EOF between frames).
    Disconnected,
    /// The connection died mid-frame (EOF inside a length prefix or
    /// payload) — a truncated frame.
    TruncatedFrame,
    /// The length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge {
        /// The declared payload length.
        declared: u64,
    },
    /// A zero-length frame (no opcode byte).
    EmptyFrame,
    /// The opcode byte is not one this protocol version defines.
    UnknownOpcode(u8),
    /// The payload is shorter than its opcode's fixed fields, or carries
    /// trailing bytes, or a count field disagrees with the payload size.
    Malformed(&'static str),
    /// A read base byte outside `ACGTacgt`.
    BadBase(u8),
    /// An I/O error (by kind; the carried detail keeps the message).
    Io(std::io::ErrorKind),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Disconnected => write!(f, "peer disconnected"),
            WireError::TruncatedFrame => write!(f, "connection closed mid-frame"),
            WireError::FrameTooLarge { declared } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds the {MAX_FRAME}-byte cap"
                )
            }
            WireError::EmptyFrame => write!(f, "zero-length frame (no opcode)"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::BadBase(b) => write!(f, "byte 0x{b:02x} is not an ACGT base"),
            WireError::Io(kind) => write!(f, "i/o error: {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::TruncatedFrame,
            kind => WireError::Io(kind),
        }
    }
}

/// Reads one frame's payload. Clean EOF **before any length byte** is
/// [`WireError::Disconnected`]; EOF after at least one byte is
/// [`WireError::TruncatedFrame`].
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] for a length prefix above [`MAX_FRAME`],
/// plus the I/O variants above.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len = [0u8; 4];
    // Distinguish "no next frame" (clean close) from "died mid-prefix".
    let mut filled = 0usize;
    while filled < len.len() {
        let n = r.read(&mut len[filled..])?;
        if n == 0 {
            return Err(if filled == 0 {
                WireError::Disconnected
            } else {
                WireError::TruncatedFrame
            });
        }
        filled += n;
    }
    let declared = u64::from(u32::from_le_bytes(len));
    if declared as usize > MAX_FRAME {
        return Err(WireError::FrameTooLarge { declared });
    }
    let mut payload = vec![0u8; declared as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if `payload` exceeds [`MAX_FRAME`], plus
/// I/O errors from the writer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::FrameTooLarge {
            declared: payload.len() as u64,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// A bounds-checked little-endian payload reader: every accessor returns a
/// typed error instead of slicing out of range.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() < n {
            return Err(WireError::Malformed("payload shorter than its fields"));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let bytes = self.take(1)?;
        // lint: index-ok — take(1) returned exactly one byte
        Ok(bytes[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(f64::from_le_bytes(buf))
    }

    fn rest(self) -> &'a [u8] {
        self.bytes
    }

    fn finish(self) -> Result<(), WireError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after the last field"))
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Map one read. `bases` is validated ASCII `ACGT` (upper-cased on
    /// decode). The request id is the client's correlation key **and** the
    /// read's determinism key: the server derives the sensing seed from it,
    /// so a request's result is independent of arrival order, batch
    /// assembly, and every other client.
    Map {
        /// Client-chosen request id, echoed in the response.
        req_id: u64,
        /// Upper-case ASCII `ACGT` bases.
        bases: Vec<u8>,
    },
    /// Ask for the server's aggregate counters.
    Stats,
    /// Ask the server to finish queued work and shut down.
    Shutdown,
    /// Ask for readiness and degradation state (quarantined rows, queue
    /// depth). Answered from the connection's reader thread, so it works
    /// even while the mapping executor is saturated.
    Health,
}

impl Request {
    /// Encodes into a payload (no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Map { req_id, bases } => {
                let mut out = Vec::with_capacity(9 + bases.len());
                out.push(0x01);
                out.extend_from_slice(&req_id.to_le_bytes());
                out.extend_from_slice(bases);
                out
            }
            Request::Stats => vec![0x02],
            Request::Shutdown => vec![0x03],
            Request::Health => vec![0x04],
        }
    }

    /// Encodes into a complete frame (length prefix plus payload), ready
    /// to write to a socket verbatim. Load generators pre-encode their
    /// request stream with this so encoding cost stays off the timed
    /// path.
    #[must_use]
    pub fn encode_framed(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(4 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a payload.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`]s for empty payloads, unknown opcodes, short
    /// fixed fields, and non-`ACGT` base bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut c = Cursor::new(payload);
        let opcode = c.u8().map_err(|_| WireError::EmptyFrame)?;
        match opcode {
            0x01 => {
                let req_id = c.u64()?;
                let raw = c.rest();
                let mut bases = Vec::with_capacity(raw.len());
                for &b in raw {
                    match b {
                        b'A' | b'C' | b'G' | b'T' => bases.push(b),
                        b'a' | b'c' | b'g' | b't' => bases.push(b.to_ascii_uppercase()),
                        other => return Err(WireError::BadBase(other)),
                    }
                }
                Ok(Request::Map { req_id, bases })
            }
            0x02 => {
                c.finish()?;
                Ok(Request::Stats)
            }
            0x03 => {
                c.finish()?;
                Ok(Request::Shutdown)
            }
            0x04 => {
                c.finish()?;
                Ok(Request::Health)
            }
            other => Err(WireError::UnknownOpcode(other)),
        }
    }
}

/// Per-read outcome classification on the wire (mirrors
/// [`asmcap::MapStatus`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireStatus {
    /// At least one candidate position.
    Mapped,
    /// Searched, no candidates.
    Unmapped,
    /// Longer than the row width; the prefix was searched.
    Truncated,
    /// Shorter than the row width; not searched.
    Rejected,
}

impl WireStatus {
    fn code(self) -> u8 {
        match self {
            WireStatus::Mapped => 0,
            WireStatus::Unmapped => 1,
            WireStatus::Truncated => 2,
            WireStatus::Rejected => 3,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        match code {
            0 => Ok(WireStatus::Mapped),
            1 => Ok(WireStatus::Unmapped),
            2 => Ok(WireStatus::Truncated),
            3 => Ok(WireStatus::Rejected),
            _ => Err(WireError::Malformed("unknown map status code")),
        }
    }
}

impl From<asmcap::MapStatus> for WireStatus {
    fn from(status: asmcap::MapStatus) -> Self {
        match status {
            asmcap::MapStatus::Mapped => WireStatus::Mapped,
            asmcap::MapStatus::Unmapped => WireStatus::Unmapped,
            asmcap::MapStatus::Truncated => WireStatus::Truncated,
            asmcap::MapStatus::Rejected => WireStatus::Rejected,
        }
    }
}

/// One mapped read's reply.
#[derive(Debug, Clone, PartialEq)]
pub struct MapReply {
    /// Echo of the request id.
    pub req_id: u64,
    /// Outcome classification.
    pub status: WireStatus,
    /// Microseconds the request waited in the coalescing queue.
    pub queue_us: u32,
    /// Microseconds its batch spent in the mapping core.
    pub service_us: u32,
    /// Device cycles the read consumed.
    pub cycles: u64,
    /// Search operations the read issued.
    pub searches: u64,
    /// Energy the read consumed, in joules.
    pub energy_j: f64,
    /// Candidate reference positions, ascending.
    pub positions: Vec<u64>,
}

/// Why a request was turned away instead of mapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadReason {
    /// The admission queue is at capacity.
    QueueFull,
    /// The queue is above its shed watermark and this read would need a
    /// full reference scan (no prefilter shortlist) — the most expensive
    /// class is degraded first.
    Shed,
    /// The request's deadline expired while it waited in the queue; it
    /// was answered without being mapped.
    Deadline,
}

impl OverloadReason {
    fn code(self) -> u8 {
        match self {
            OverloadReason::QueueFull => 0,
            OverloadReason::Shed => 1,
            OverloadReason::Deadline => 2,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        match code {
            0 => Ok(OverloadReason::QueueFull),
            1 => Ok(OverloadReason::Shed),
            2 => Ok(OverloadReason::Deadline),
            _ => Err(WireError::Malformed("unknown overload reason code")),
        }
    }
}

/// Stable error codes carried by [`Response::ProtocolError`].
pub mod error_code {
    /// Frame length prefix above [`super::MAX_FRAME`].
    pub const FRAME_TOO_LARGE: u8 = 1;
    /// Zero-length frame.
    pub const EMPTY_FRAME: u8 = 2;
    /// Unknown opcode byte.
    pub const UNKNOWN_OPCODE: u8 = 3;
    /// Payload shape disagrees with its opcode.
    pub const MALFORMED: u8 = 4;
    /// A non-`ACGT` base byte in a map request.
    pub const BAD_BASE: u8 = 5;
    /// The server is at its connection cap.
    pub const TOO_MANY_CONNECTIONS: u8 = 6;
    /// Shutdown was requested but this server forbids remote shutdown.
    pub const SHUTDOWN_FORBIDDEN: u8 = 7;
}

/// The aggregate counters a [`Response::Stats`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerCounters {
    /// Map requests accepted into the queue.
    pub accepted: u64,
    /// Map responses sent with status `Mapped`.
    pub mapped: u64,
    /// Map responses sent with status `Unmapped`.
    pub unmapped: u64,
    /// Map responses sent with status `Truncated`.
    pub truncated: u64,
    /// Map responses sent with status `Rejected`.
    pub rejected: u64,
    /// Requests refused with [`OverloadReason::QueueFull`].
    pub overloaded: u64,
    /// Requests refused with [`OverloadReason::Shed`].
    pub shed: u64,
    /// Batches drained through the pipeline.
    pub batches: u64,
    /// Reads drained inside those batches.
    pub batched_reads: u64,
    /// Connections dropped for protocol errors or undeliverable replies
    /// (slow readers).
    pub dropped_connections: u64,
    /// Requests answered with [`OverloadReason::Deadline`] because they
    /// expired in the queue.
    pub deadline_expired: u64,
    /// Connections force-closed because they were still open when the
    /// shutdown drain timeout fired.
    pub force_closed: u64,
}

/// The readiness and degradation snapshot a [`Response::Health`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthReply {
    /// The server is accepting map requests (not shutting down).
    pub ready: bool,
    /// An active fault plan is installed on the device.
    pub fault_armed: bool,
    /// Rows the install-time self-test quarantined (static after build).
    pub quarantined_rows: u64,
    /// Requests currently waiting in the coalescing queue.
    pub queue_depth: u64,
    /// The queue's capacity.
    pub queue_cap: u64,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One read's mapping result.
    Map(MapReply),
    /// The request was turned away; no mapping was attempted.
    Overload {
        /// Echo of the request id.
        req_id: u64,
        /// Why it was refused.
        reason: OverloadReason,
    },
    /// The previous frame could not be honoured; the server closes the
    /// connection after sending this.
    ProtocolError {
        /// One of [`error_code`]'s constants.
        code: u8,
        /// Human-readable detail.
        detail: String,
    },
    /// Aggregate server counters.
    Stats(ServerCounters),
    /// Shutdown acknowledged; the server stops accepting work.
    ShutdownAck,
    /// Readiness and degradation snapshot.
    Health(HealthReply),
}

impl Response {
    /// Encodes into a payload (no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Map(reply) => {
                let mut out = Vec::with_capacity(1 + 8 + 1 + 4 + 4 + 8 + 8 + 8 + 4);
                out.push(0x81);
                out.extend_from_slice(&reply.req_id.to_le_bytes());
                out.push(reply.status.code());
                out.extend_from_slice(&reply.queue_us.to_le_bytes());
                out.extend_from_slice(&reply.service_us.to_le_bytes());
                out.extend_from_slice(&reply.cycles.to_le_bytes());
                out.extend_from_slice(&reply.searches.to_le_bytes());
                out.extend_from_slice(&reply.energy_j.to_le_bytes());
                out.extend_from_slice(&(reply.positions.len() as u32).to_le_bytes());
                for position in &reply.positions {
                    out.extend_from_slice(&position.to_le_bytes());
                }
                out
            }
            Response::Overload { req_id, reason } => {
                let mut out = Vec::with_capacity(10);
                out.push(0x82);
                out.extend_from_slice(&req_id.to_le_bytes());
                out.push(reason.code());
                out
            }
            Response::ProtocolError { code, detail } => {
                let mut out = Vec::with_capacity(2 + detail.len());
                out.push(0x83);
                out.push(*code);
                out.extend_from_slice(detail.as_bytes());
                out
            }
            Response::Stats(counters) => {
                let mut out = Vec::with_capacity(1 + 12 * 8);
                out.push(0x84);
                for field in [
                    counters.accepted,
                    counters.mapped,
                    counters.unmapped,
                    counters.truncated,
                    counters.rejected,
                    counters.overloaded,
                    counters.shed,
                    counters.batches,
                    counters.batched_reads,
                    counters.dropped_connections,
                    counters.deadline_expired,
                    counters.force_closed,
                ] {
                    out.extend_from_slice(&field.to_le_bytes());
                }
                out
            }
            Response::ShutdownAck => vec![0x85],
            Response::Health(health) => {
                let mut out = Vec::with_capacity(1 + 2 + 3 * 8);
                out.push(0x86);
                out.push(u8::from(health.ready));
                out.push(u8::from(health.fault_armed));
                out.extend_from_slice(&health.quarantined_rows.to_le_bytes());
                out.extend_from_slice(&health.queue_depth.to_le_bytes());
                out.extend_from_slice(&health.queue_cap.to_le_bytes());
                out
            }
        }
    }

    /// Decodes a payload.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`]s for empty payloads, unknown opcodes, short or
    /// oversized fields, and invalid enum codes.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut c = Cursor::new(payload);
        let opcode = c.u8().map_err(|_| WireError::EmptyFrame)?;
        match opcode {
            0x81 => {
                let req_id = c.u64()?;
                let status = WireStatus::from_code(c.u8()?)?;
                let queue_us = c.u32()?;
                let service_us = c.u32()?;
                let cycles = c.u64()?;
                let searches = c.u64()?;
                let energy_j = c.f64()?;
                let count = c.u32()? as usize;
                if count.checked_mul(8) != Some(c.bytes.len()) {
                    return Err(WireError::Malformed(
                        "position count disagrees with payload size",
                    ));
                }
                let mut positions = Vec::with_capacity(count);
                for _ in 0..count {
                    positions.push(c.u64()?);
                }
                c.finish()?;
                Ok(Response::Map(MapReply {
                    req_id,
                    status,
                    queue_us,
                    service_us,
                    cycles,
                    searches,
                    energy_j,
                    positions,
                }))
            }
            0x82 => {
                let req_id = c.u64()?;
                let reason = OverloadReason::from_code(c.u8()?)?;
                c.finish()?;
                Ok(Response::Overload { req_id, reason })
            }
            0x83 => {
                let code = c.u8()?;
                let detail = String::from_utf8_lossy(c.rest()).into_owned();
                Ok(Response::ProtocolError { code, detail })
            }
            0x84 => {
                let counters = ServerCounters {
                    accepted: c.u64()?,
                    mapped: c.u64()?,
                    unmapped: c.u64()?,
                    truncated: c.u64()?,
                    rejected: c.u64()?,
                    overloaded: c.u64()?,
                    shed: c.u64()?,
                    batches: c.u64()?,
                    batched_reads: c.u64()?,
                    dropped_connections: c.u64()?,
                    deadline_expired: c.u64()?,
                    force_closed: c.u64()?,
                };
                c.finish()?;
                Ok(Response::Stats(counters))
            }
            0x85 => {
                c.finish()?;
                Ok(Response::ShutdownAck)
            }
            0x86 => {
                let flag = |byte: u8, what: &'static str| match byte {
                    0 => Ok(false),
                    1 => Ok(true),
                    _ => Err(WireError::Malformed(what)),
                };
                let health = HealthReply {
                    ready: flag(c.u8()?, "health ready flag is not 0 or 1")?,
                    fault_armed: flag(c.u8()?, "health fault flag is not 0 or 1")?,
                    quarantined_rows: c.u64()?,
                    queue_depth: c.u64()?,
                    queue_cap: c.u64()?,
                };
                c.finish()?;
                Ok(Response::Health(health))
            }
            other => Err(WireError::UnknownOpcode(other)),
        }
    }
}

/// The [`Response::ProtocolError`] a [`WireError`] maps to, if the error
/// is the client's fault (malformed input). I/O-shaped errors return
/// `None` — there is nobody left to answer.
#[must_use]
pub fn error_response(error: &WireError) -> Option<Response> {
    let code = match error {
        WireError::FrameTooLarge { .. } => error_code::FRAME_TOO_LARGE,
        WireError::EmptyFrame => error_code::EMPTY_FRAME,
        WireError::UnknownOpcode(_) => error_code::UNKNOWN_OPCODE,
        WireError::Malformed(_) => error_code::MALFORMED,
        WireError::BadBase(_) => error_code::BAD_BASE,
        WireError::Disconnected | WireError::TruncatedFrame | WireError::Io(_) => return None,
    };
    Some(Response::ProtocolError {
        code,
        detail: error.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let requests = [
            Request::Map {
                req_id: 0xDEAD_BEEF_0042,
                bases: b"ACGTACGT".to_vec(),
            },
            Request::Stats,
            Request::Shutdown,
            Request::Health,
        ];
        for request in requests {
            assert_eq!(Request::decode(&request.encode()).unwrap(), request);
        }
    }

    #[test]
    fn lowercase_bases_normalize() {
        let decoded = Request::decode(
            &Request::Map {
                req_id: 1,
                bases: b"acgt".to_vec(),
            }
            .encode(),
        )
        .unwrap();
        assert_eq!(
            decoded,
            Request::Map {
                req_id: 1,
                bases: b"ACGT".to_vec()
            }
        );
    }

    #[test]
    fn response_roundtrips() {
        let responses = [
            Response::Map(MapReply {
                req_id: 7,
                status: WireStatus::Mapped,
                queue_us: 120,
                service_us: 450,
                cycles: 9,
                searches: 8,
                energy_j: 1.5e-9,
                positions: vec![0, 64, 4096],
            }),
            Response::Overload {
                req_id: 9,
                reason: OverloadReason::Shed,
            },
            Response::ProtocolError {
                code: error_code::BAD_BASE,
                detail: "byte 0x51 is not an ACGT base".to_string(),
            },
            Response::Overload {
                req_id: 10,
                reason: OverloadReason::Deadline,
            },
            Response::Stats(ServerCounters {
                accepted: 10,
                mapped: 6,
                unmapped: 2,
                truncated: 1,
                rejected: 1,
                overloaded: 3,
                shed: 2,
                batches: 4,
                batched_reads: 10,
                dropped_connections: 1,
                deadline_expired: 5,
                force_closed: 2,
            }),
            Response::ShutdownAck,
            Response::Health(HealthReply {
                ready: true,
                fault_armed: true,
                quarantined_rows: 17,
                queue_depth: 3,
                queue_cap: 1024,
            }),
        ];
        for response in responses {
            assert_eq!(Response::decode(&response.encode()).unwrap(), response);
        }
    }

    #[test]
    fn health_flags_reject_non_boolean_bytes() {
        let mut evil = Response::Health(HealthReply::default()).encode();
        evil[1] = 2;
        assert!(matches!(
            Response::decode(&evil),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert_eq!(Request::decode(&[]), Err(WireError::EmptyFrame));
        assert_eq!(
            Request::decode(&[0x7F]),
            Err(WireError::UnknownOpcode(0x7F))
        );
        assert_eq!(
            Request::decode(&[0x01, 1, 2, 3]),
            Err(WireError::Malformed("payload shorter than its fields"))
        );
        assert_eq!(
            Request::decode(
                &Request::Map {
                    req_id: 1,
                    bases: b"ACGQ".to_vec(),
                }
                .encode()
            ),
            Err(WireError::BadBase(b'Q'))
        );
        assert_eq!(
            Request::decode(&[0x02, 0xFF]),
            Err(WireError::Malformed("trailing bytes after the last field"))
        );
        assert_eq!(Response::decode(&[]), Err(WireError::EmptyFrame));
        // A map reply whose position count overruns the payload.
        let mut evil = Response::Map(MapReply {
            req_id: 1,
            status: WireStatus::Mapped,
            queue_us: 0,
            service_us: 0,
            cycles: 0,
            searches: 0,
            energy_j: 0.0,
            positions: vec![1],
        })
        .encode();
        let count_at = evil.len() - 8 - 4;
        evil[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Response::decode(&evil),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut reader = buf.as_slice();
        assert_eq!(read_frame(&mut reader).unwrap(), b"hello");
        assert_eq!(read_frame(&mut reader), Err(WireError::Disconnected));

        // Oversized prefix is refused before allocation.
        let mut evil = Vec::new();
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut evil.as_slice()),
            Err(WireError::FrameTooLarge {
                declared: u64::from(u32::MAX)
            })
        );

        // Truncated payload and truncated prefix are distinct from clean EOF.
        let mut short = Vec::new();
        write_frame(&mut short, b"hello").unwrap();
        short.truncate(6);
        assert_eq!(
            read_frame(&mut short.as_slice()),
            Err(WireError::TruncatedFrame)
        );
        assert_eq!(
            read_frame(&mut [0u8, 0].as_slice()),
            Err(WireError::TruncatedFrame)
        );
    }

    #[test]
    fn client_fault_errors_map_to_responses() {
        assert!(error_response(&WireError::BadBase(b'Z')).is_some());
        assert!(error_response(&WireError::EmptyFrame).is_some());
        assert!(error_response(&WireError::FrameTooLarge { declared: 1 << 30 }).is_some());
        assert!(error_response(&WireError::Disconnected).is_none());
        assert!(error_response(&WireError::Io(std::io::ErrorKind::BrokenPipe)).is_none());
    }
}
