//! `asmcap-loadgen` — open-loop load generator for `asmcap_serve`.
//!
//! ```text
//! asmcap_loadgen --addr HOST:PORT [options]
//!
//! options:
//!   --clients N       concurrent client connections (default 8)
//!   --requests N      map requests per client (default 4096)
//!   --rate R          aggregate offered load, reads/s (default 100000;
//!                     0 = unpaced, send as fast as the socket accepts)
//!   --window W        closed-loop cap on in-flight requests per client
//!                     (default 0 = open loop, no cap)
//!   --sweep R1,R2,..  run once per offered rate (overrides --rate)
//!   --ref-len N       reference length — must match the server (default 8192)
//!   --ref-seed N      reference seed — must match the server (default 7)
//!   --row-width W     read length — must match the server (default 128)
//!   --read-seed N     read sampling seed (default 11)
//!   --out PATH        write the sweep summary as JSON
//!   --shutdown        send a shutdown request after the last run
//! ```
//!
//! Each client runs a paced sender thread and a receiver thread;
//! round-trip latency is measured per request id. Every map request gets
//! exactly one response (map reply or typed overload), so a run is
//! complete when `requests` responses have arrived per client.
//!
//! Reads are sampled from the same generated reference the server
//! stores (Condition-A error profile), so the mapped fraction is high
//! and stable; request ids are globally unique, so replies are
//! deterministic regardless of pacing.

use std::process::ExitCode;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use asmcap_genome::{ErrorProfile, GenomeModel, ReadSampler};
use asmcap_serve::perf::{self, LatencyHistogram, LatencySummary};
use asmcap_serve::{MapClient, OverloadReason, Request, Response};
use rand::Rng as _;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("asmcap-loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}

/// One offered-load point's outcome.
struct RunResult {
    offered_rate: u64,
    window: u64,
    clients: usize,
    requests: u64,
    mapped: u64,
    unmapped: u64,
    truncated: u64,
    rejected: u64,
    queue_full: u64,
    shed: u64,
    elapsed_s: f64,
    latency: Option<LatencySummary>,
}

impl RunResult {
    fn achieved_rps(&self) -> f64 {
        let completed = self.mapped + self.unmapped + self.truncated + self.rejected;
        if self.elapsed_s > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            {
                completed as f64 / self.elapsed_s
            }
        } else {
            0.0
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return Ok(());
    }
    let addr = flag_value(&args, "--addr").ok_or("missing --addr HOST:PORT")?;
    let clients: usize = parse_or(&args, "--clients", 8)?;
    let requests: u64 = parse_or(&args, "--requests", 4_096)?;
    let ref_len: usize = parse_or(&args, "--ref-len", 8_192)?;
    let ref_seed: u64 = parse_or(&args, "--ref-seed", 7)?;
    let row_width: usize = parse_or(&args, "--row-width", 128)?;
    let read_seed: u64 = parse_or(&args, "--read-seed", 11)?;
    let rates: Vec<u64> = match flag_value(&args, "--sweep") {
        Some(list) => list
            .split(',')
            .map(|r| {
                r.trim()
                    .parse()
                    .map_err(|_| format!("bad sweep rate '{r}'"))
            })
            .collect::<Result<_, _>>()?,
        None => vec![parse_or(&args, "--rate", 100_000)?],
    };
    let window: u64 = parse_or(&args, "--window", 0)?;
    if clients == 0 || requests == 0 || rates.is_empty() {
        return Err("need at least one client, one request, and one rate".to_string());
    }

    // Sample every client's read set up front, from the server's
    // reference. Origins land on the server's segmentation grid by
    // default (`--stride`, 0 = unaligned): a serving workload is reads
    // that *can* map, and off-grid reads mostly cannot under strided
    // segmentation — they would measure the HDAC/TASR miss path instead
    // of serving capacity.
    let stride: usize = parse_or(&args, "--stride", 8)?;
    let genome = GenomeModel::uniform().generate(ref_len, ref_seed);
    let sampler = ReadSampler::new(row_width, ErrorProfile::condition_a());
    // Cap origins at the sampler's own limit: error injection reads a
    // little past origin + read_len, so the grid stops short of the end.
    let max_origin = sampler
        .max_origin(ref_len)
        .ok_or("reference too short for the requested read width")?;
    let n_origins = max_origin / stride.max(1) + 1;
    let per_client = usize::try_from(requests).unwrap_or(usize::MAX);
    let reads_per_client: Vec<Vec<Vec<u8>>> = (0..clients)
        .map(|client| {
            let mut rng = asmcap_genome::rng(read_seed.wrapping_add(client as u64));
            if stride == 0 {
                sampler
                    .sample_many(&genome, per_client, read_seed.wrapping_add(client as u64))
                    .into_iter()
                    .map(|r| r.bases.to_string().into_bytes())
                    .collect()
            } else {
                (0..per_client)
                    .map(|_| {
                        let origin = (rng.gen::<u64>() as usize % n_origins) * stride;
                        sampler
                            .sample_at(&genome, origin, &mut rng)
                            .bases
                            .to_string()
                            .into_bytes()
                    })
                    .collect()
            }
        })
        .collect();

    let mut results = Vec::with_capacity(rates.len());
    for (round, &rate) in rates.iter().enumerate() {
        let result = run_once(
            &addr,
            clients,
            requests,
            rate,
            window,
            round as u64,
            &reads_per_client,
        )?;
        print_result(&result);
        results.push(result);
    }

    if let Some(path) = flag_value(&args, "--out") {
        std::fs::write(&path, to_json(&results))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("asmcap-loadgen: wrote {path}");
    }

    if args.iter().any(|a| a == "--shutdown") {
        let mut client = MapClient::connect(&addr).map_err(|e| format!("shutdown connect: {e}"))?;
        client
            .shutdown_server()
            .map_err(|e| format!("shutdown request: {e}"))?;
        eprintln!("asmcap-loadgen: server acknowledged shutdown");
    }
    Ok(())
}

/// Drives one offered-load point: `clients` connections, `requests` map
/// requests each, paced to `rate` reads/s aggregate (0 = unpaced), with
/// at most `window` requests in flight per client (0 = uncapped).
#[allow(clippy::too_many_arguments)]
fn run_once(
    addr: &str,
    clients: usize,
    requests: u64,
    rate: u64,
    window: u64,
    round: u64,
    reads_per_client: &[Vec<Vec<u8>>],
) -> Result<RunResult, String> {
    let interval = if rate == 0 {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(clients as f64 / rate as f64)
    };
    // Pre-encode every request frame before the clock starts: the send
    // path then writes bytes verbatim, keeping encode cost off the timed
    // path (and off the core the server is sharing).
    let mut frames_per_client = Vec::with_capacity(clients);
    for client_idx in 0..clients {
        let reads = reads_per_client
            .get(client_idx)
            .ok_or("read set indexing out of range")?;
        let id_base = (round << 48) | ((client_idx as u64) << 32);
        let frames: Vec<Vec<u8>> = (0..requests)
            .map(|i| {
                let slot = usize::try_from(i).unwrap_or(usize::MAX);
                let bases = reads
                    .get(slot % reads.len().max(1))
                    .cloned()
                    .unwrap_or_default();
                Request::Map {
                    req_id: id_base | i,
                    bases,
                }
                .encode_framed()
            })
            .collect();
        frames_per_client.push(frames);
    }
    let start = perf::now();
    let mut workers = Vec::with_capacity(clients);
    for (client_idx, frames) in frames_per_client.into_iter().enumerate() {
        let addr = addr.to_string();
        let handle = std::thread::Builder::new()
            .name(format!("loadgen-client-{client_idx}"))
            .spawn(move || {
                client_thread(&addr, client_idx as u64, requests, interval, window, frames)
            })
            .map_err(|e| format!("spawning client thread: {e}"))?;
        workers.push(handle);
    }
    let mut total = ClientTally::default();
    for handle in workers {
        let tally = handle
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        total.absorb(&tally);
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    Ok(RunResult {
        offered_rate: rate,
        window,
        clients,
        requests: requests * clients as u64,
        mapped: total.mapped,
        unmapped: total.unmapped,
        truncated: total.truncated,
        rejected: total.rejected,
        queue_full: total.queue_full,
        shed: total.shed,
        elapsed_s,
        latency: total.latency.summary(),
    })
}

/// What one client connection saw.
#[derive(Default)]
struct ClientTally {
    mapped: u64,
    unmapped: u64,
    truncated: u64,
    rejected: u64,
    queue_full: u64,
    shed: u64,
    latency: LatencyHistogram,
}

impl ClientTally {
    fn absorb(&mut self, other: &ClientTally) {
        self.mapped += other.mapped;
        self.unmapped += other.unmapped;
        self.truncated += other.truncated;
        self.rejected += other.rejected;
        self.queue_full += other.queue_full;
        self.shed += other.shed;
        self.latency.merge(&other.latency);
    }
}

/// One connection: a paced sender thread plus this (receiver) thread.
/// `frames` holds the client's pre-encoded request stream; request ids
/// are globally unique across rounds and clients (they are the server's
/// determinism key AND our RTT correlation key — the low 32 bits index
/// the send-timestamp table directly).
fn client_thread(
    addr: &str,
    client_idx: u64,
    requests: u64,
    interval: Duration,
    window: u64,
    frames: Vec<Vec<u8>>,
) -> Result<ClientTally, String> {
    if interval.is_zero() && window > 0 {
        // Unpaced closed loop: a single thread per client is cheaper
        // than a sender/receiver pair on a shared core.
        return closed_loop_thread(addr, requests, window, &frames);
    }
    let client = MapClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let (mut tx, mut rx) = client
        .into_split()
        .map_err(|e| format!("splitting client stream: {e}"))?;
    let slots = usize::try_from(requests).unwrap_or(usize::MAX);
    let in_flight: Arc<Mutex<Vec<Option<Instant>>>> = Arc::new(Mutex::new(vec![None; slots]));
    // Closed-loop credits: the sender spends one per request, the
    // receiver returns one per response. Zero window = open loop.
    let credits: Arc<(Mutex<u64>, Condvar)> = Arc::new((Mutex::new(window), Condvar::new()));

    let sender = {
        let in_flight = Arc::clone(&in_flight);
        let credits = Arc::clone(&credits);
        std::thread::Builder::new()
            .name(format!("loadgen-send-{client_idx}"))
            .spawn(move || -> Result<(), String> {
                // Pace in ~2ms bursts rather than per request: a sleep
                // per request is a timer wakeup per request, which on a
                // small host costs more than the requests themselves.
                let pace_burst = if interval.is_zero() {
                    u64::MAX
                } else {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    {
                        (0.002 / interval.as_secs_f64()).round().max(1.0) as u64
                    }
                };
                let mut next_send = perf::now();
                for i in 0..requests {
                    if !interval.is_zero() && i % pace_burst == 0 {
                        let now = perf::now();
                        if next_send > now {
                            std::thread::sleep(next_send - now);
                        }
                        next_send += interval
                            * u32::try_from(pace_burst.min(u64::from(u32::MAX)))
                                .unwrap_or(u32::MAX);
                    }
                    if window > 0 {
                        let (avail, returned) = &*credits;
                        let mut avail = avail.lock().expect("credit lock poisoned");
                        if *avail == 0 {
                            // Push buffered frames out before sleeping:
                            // their replies are the only credit source.
                            drop(avail);
                            tx.flush().map_err(|e| format!("send flush: {e}"))?;
                            avail = credits.0.lock().expect("credit lock poisoned");
                            while *avail == 0 {
                                avail = returned.wait(avail).expect("credit lock poisoned");
                            }
                        }
                        *avail -= 1;
                    }
                    let slot = usize::try_from(i).unwrap_or(usize::MAX);
                    let frame = frames.get(slot).ok_or("frame indexing out of range")?;
                    if let Some(entry) = in_flight
                        .lock()
                        .expect("in-flight table lock poisoned")
                        .get_mut(slot)
                    {
                        *entry = Some(perf::now());
                    }
                    tx.send_framed(frame).map_err(|e| format!("send: {e}"))?;
                    // Flush at burst boundaries so frames go out on
                    // schedule, and periodically in between so no block
                    // of frames outlives the buffer.
                    if i % 64 == 63 || (!interval.is_zero() && (i + 1) % pace_burst == 0) {
                        tx.flush().map_err(|e| format!("send flush: {e}"))?;
                    }
                }
                tx.flush().map_err(|e| format!("send flush: {e}"))?;
                Ok(())
            })
            .map_err(|e| format!("spawning sender thread: {e}"))?
    };

    let return_credit = || {
        if window > 0 {
            let (avail, returned) = &*credits;
            *avail.lock().expect("credit lock poisoned") += 1;
            returned.notify_one();
        }
    };
    let mut tally = ClientTally::default();
    let mut received = 0u64;
    while received < requests {
        let response = rx.recv().map_err(|e| format!("recv: {e}"))?;
        return_credit();
        tally_response(
            response,
            &mut in_flight.lock().expect("in-flight table lock poisoned"),
            &mut tally,
        )?;
        received += 1;
    }
    sender
        .join()
        .map_err(|_| "sender thread panicked".to_string())??;
    Ok(tally)
}

/// Unpaced closed-loop drive on one thread: prime `window` requests,
/// then trade blocks of replies for fresh sends, keeping the window
/// topped up until every request is answered.
fn closed_loop_thread(
    addr: &str,
    requests: u64,
    window: u64,
    frames: &[Vec<u8>],
) -> Result<ClientTally, String> {
    let client = MapClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let (mut tx, mut rx) = client
        .into_split()
        .map_err(|e| format!("splitting client stream: {e}"))?;
    let slots = usize::try_from(requests).unwrap_or(usize::MAX);
    let mut sent_at: Vec<Option<Instant>> = vec![None; slots];
    let mut tally = ClientTally::default();
    let mut next: u64 = 0;
    let mut received: u64 = 0;

    let send_one = |tx: &mut asmcap_serve::SendHalf,
                    sent_at: &mut Vec<Option<Instant>>,
                    i: u64|
     -> Result<(), String> {
        let slot = usize::try_from(i).unwrap_or(usize::MAX);
        if let Some(entry) = sent_at.get_mut(slot) {
            *entry = Some(perf::now());
        }
        let frame = frames.get(slot).ok_or("frame indexing out of range")?;
        tx.send_framed(frame).map_err(|e| format!("send: {e}"))
    };

    while next < window.min(requests) {
        send_one(&mut tx, &mut sent_at, next)?;
        next += 1;
    }
    tx.flush().map_err(|e| format!("send flush: {e}"))?;

    // Trade half-window blocks: small enough to keep the server fed,
    // large enough to amortize the flush syscall.
    let block = (window / 2).clamp(1, 64);
    while received < requests {
        let burst = block.min(next - received);
        for _ in 0..burst {
            let response = rx.recv().map_err(|e| format!("recv: {e}"))?;
            tally_response(response, &mut sent_at, &mut tally)?;
            received += 1;
        }
        let refill = burst.min(requests - next);
        for _ in 0..refill {
            send_one(&mut tx, &mut sent_at, next)?;
            next += 1;
        }
        if refill > 0 {
            tx.flush().map_err(|e| format!("send flush: {e}"))?;
        }
    }
    Ok(tally)
}

/// Accounts one response against the send-timestamp table.
fn tally_response(
    response: Response,
    sent_at: &mut [Option<Instant>],
    tally: &mut ClientTally,
) -> Result<(), String> {
    let mut take = |req_id: u64| -> Option<Instant> {
        let slot = usize::try_from(req_id & 0xFFFF_FFFF).unwrap_or(usize::MAX);
        sent_at.get_mut(slot).and_then(Option::take)
    };
    match response {
        Response::Map(reply) => {
            if let Some(at) = take(reply.req_id) {
                tally
                    .latency
                    .record_us(u64::from(perf::micros_between(at, perf::now())));
            }
            match reply.status {
                asmcap_serve::WireStatus::Mapped => tally.mapped += 1,
                asmcap_serve::WireStatus::Unmapped => tally.unmapped += 1,
                asmcap_serve::WireStatus::Truncated => tally.truncated += 1,
                asmcap_serve::WireStatus::Rejected => tally.rejected += 1,
            }
        }
        Response::Overload { req_id, reason } => {
            take(req_id);
            match reason {
                OverloadReason::QueueFull => tally.queue_full += 1,
                OverloadReason::Shed => tally.shed += 1,
            }
        }
        Response::ProtocolError { code, detail } => {
            return Err(format!("server protocol error {code}: {detail}"));
        }
        Response::Stats(_) | Response::ShutdownAck => {
            return Err("unexpected response type during load run".to_string());
        }
    }
    Ok(())
}

fn print_result(result: &RunResult) {
    let rate = if result.offered_rate == 0 {
        "unpaced".to_string()
    } else {
        format!("{}/s", result.offered_rate)
    };
    let window = if result.window == 0 {
        "open".to_string()
    } else {
        result.window.to_string()
    };
    println!(
        "offered {rate}  window {window}  clients {}  requests {}  achieved {:.0} reads/s  elapsed {:.3}s",
        result.clients,
        result.requests,
        result.achieved_rps(),
        result.elapsed_s
    );
    println!(
        "  mapped {}  unmapped {}  truncated {}  rejected {}  queue_full {}  shed {}",
        result.mapped,
        result.unmapped,
        result.truncated,
        result.rejected,
        result.queue_full,
        result.shed
    );
    match &result.latency {
        Some(latency) => println!(
            "  latency_us  p50 {}  p90 {}  p99 {}  max {}  mean {:.0}  (n={})",
            latency.p50_us,
            latency.p90_us,
            latency.p99_us,
            latency.max_us,
            latency.mean_us,
            latency.count
        ),
        None => println!("  latency: no successful map replies"),
    }
}

/// Hand-rolled JSON (no serde in the offline workspace).
fn to_json(results: &[RunResult]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"offered_rate\": {}, ", r.offered_rate));
        out.push_str(&format!("\"window\": {}, ", r.window));
        out.push_str(&format!("\"clients\": {}, ", r.clients));
        out.push_str(&format!("\"requests\": {}, ", r.requests));
        out.push_str(&format!("\"mapped\": {}, ", r.mapped));
        out.push_str(&format!("\"unmapped\": {}, ", r.unmapped));
        out.push_str(&format!("\"truncated\": {}, ", r.truncated));
        out.push_str(&format!("\"rejected\": {}, ", r.rejected));
        out.push_str(&format!("\"queue_full\": {}, ", r.queue_full));
        out.push_str(&format!("\"shed\": {}, ", r.shed));
        out.push_str(&format!("\"elapsed_s\": {:.6}, ", r.elapsed_s));
        out.push_str(&format!("\"achieved_rps\": {:.1}", r.achieved_rps()));
        if let Some(latency) = &r.latency {
            out.push_str(&format!(
                ", \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}, \
                 \"mean\": {:.1}, \"count\": {}}}",
                latency.p50_us,
                latency.p90_us,
                latency.p99_us,
                latency.max_us,
                latency.mean_us,
                latency.count
            ));
        }
        out.push('}');
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_or<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        Some(v) => v.parse().map_err(|_| format!("bad value '{v}' for {flag}")),
        None => Ok(default),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

const HELP: &str = "\
asmcap-loadgen: open-loop load generator for asmcap_serve.

usage:
  asmcap_loadgen --addr HOST:PORT [options]

options:
  --clients N       concurrent client connections (default 8)
  --requests N      map requests per client (default 4096)
  --rate R          aggregate offered load in reads/s (default 100000;
                    0 = unpaced)
  --window W        closed-loop cap on in-flight requests per client
                    (default 0 = open loop)
  --sweep R1,R2,..  run once per offered rate (overrides --rate)
  --stride N        align read origins to the server's segmentation grid
                    (default 8; 0 = unaligned random origins)
  --ref-len N       reference length, must match the server (default 8192)
  --ref-seed N      reference seed, must match the server (default 7)
  --row-width W     read length, must match the server (default 128)
  --read-seed N     read sampling seed (default 11)
  --out PATH        write the sweep summary as JSON
  --shutdown        send a shutdown request after the last run
";
