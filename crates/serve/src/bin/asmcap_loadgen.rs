//! `asmcap-loadgen` — open-loop load generator for `asmcap_serve`.
//!
//! ```text
//! asmcap_loadgen --addr HOST:PORT [options]
//!
//! options:
//!   --clients N       concurrent client connections (default 8)
//!   --requests N      map requests per client (default 4096)
//!   --rate R          aggregate offered load, reads/s (default 100000;
//!                     0 = unpaced, send as fast as the socket accepts)
//!   --window W        closed-loop cap on in-flight requests per client
//!                     (default 0 = open loop, no cap)
//!   --sweep R1,R2,..  run once per offered rate (overrides --rate)
//!   --ref-len N       reference length — must match the server (default 8192)
//!   --ref-seed N      reference seed — must match the server (default 7)
//!   --row-width W     read length — must match the server (default 128)
//!   --read-seed N     read sampling seed (default 11)
//!   --out PATH        write the sweep summary as JSON
//!   --shutdown        send a shutdown request after the last run
//!   --chaos           make ~2/3 of clients hostile: mid-frame connection
//!                     aborts and stalled readers (robustness soak)
//!   --chaos-seed N    seed for the chaos behavior draw (default 13)
//! ```
//!
//! Each client runs a paced sender thread and a receiver thread;
//! round-trip latency is measured per request id. Every **successfully
//! sent** map request gets exactly one response (map reply or typed
//! overload), so a run is complete when that many responses have arrived
//! per client; a failed send is counted in `send_errors`, never as a
//! completed request.
//!
//! Reads are sampled from the same generated reference the server
//! stores (Condition-A error profile), so the mapped fraction is high
//! and stable; request ids are globally unique, so replies are
//! deterministic regardless of pacing.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use asmcap_genome::{ErrorProfile, GenomeModel, ReadSampler};
use asmcap_serve::perf::{self, LatencyHistogram, LatencySummary};
use asmcap_serve::{MapClient, OverloadReason, Request, Response, WireError};
use rand::Rng as _;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("asmcap-loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}

/// One offered-load point's outcome.
struct RunResult {
    offered_rate: u64,
    window: u64,
    clients: usize,
    requests: u64,
    mapped: u64,
    unmapped: u64,
    truncated: u64,
    rejected: u64,
    queue_full: u64,
    shed: u64,
    deadline: u64,
    send_errors: u64,
    chaos_resets: u64,
    chaos_stalls: u64,
    elapsed_s: f64,
    latency: Option<LatencySummary>,
}

impl RunResult {
    fn achieved_rps(&self) -> f64 {
        let completed = self.mapped + self.unmapped + self.truncated + self.rejected;
        if self.elapsed_s > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            {
                completed as f64 / self.elapsed_s
            }
        } else {
            0.0
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return Ok(());
    }
    let addr = flag_value(&args, "--addr").ok_or("missing --addr HOST:PORT")?;
    let clients: usize = parse_or(&args, "--clients", 8)?;
    let requests: u64 = parse_or(&args, "--requests", 4_096)?;
    let ref_len: usize = parse_or(&args, "--ref-len", 8_192)?;
    let ref_seed: u64 = parse_or(&args, "--ref-seed", 7)?;
    let row_width: usize = parse_or(&args, "--row-width", 128)?;
    let read_seed: u64 = parse_or(&args, "--read-seed", 11)?;
    let rates: Vec<u64> = match flag_value(&args, "--sweep") {
        Some(list) => list
            .split(',')
            .map(|r| {
                r.trim()
                    .parse()
                    .map_err(|_| format!("bad sweep rate '{r}'"))
            })
            .collect::<Result<_, _>>()?,
        None => vec![parse_or(&args, "--rate", 100_000)?],
    };
    let window: u64 = parse_or(&args, "--window", 0)?;
    let chaos: Option<u64> = if args.iter().any(|a| a == "--chaos") {
        Some(parse_or(&args, "--chaos-seed", 13)?)
    } else {
        None
    };
    if clients == 0 || requests == 0 || rates.is_empty() {
        return Err("need at least one client, one request, and one rate".to_string());
    }

    // Sample every client's read set up front, from the server's
    // reference. Origins land on the server's segmentation grid by
    // default (`--stride`, 0 = unaligned): a serving workload is reads
    // that *can* map, and off-grid reads mostly cannot under strided
    // segmentation — they would measure the HDAC/TASR miss path instead
    // of serving capacity.
    let stride: usize = parse_or(&args, "--stride", 8)?;
    let genome = GenomeModel::uniform().generate(ref_len, ref_seed);
    let sampler = ReadSampler::new(row_width, ErrorProfile::condition_a());
    // Cap origins at the sampler's own limit: error injection reads a
    // little past origin + read_len, so the grid stops short of the end.
    let max_origin = sampler
        .max_origin(ref_len)
        .ok_or("reference too short for the requested read width")?;
    let n_origins = max_origin / stride.max(1) + 1;
    let per_client = usize::try_from(requests).unwrap_or(usize::MAX);
    let reads_per_client: Vec<Vec<Vec<u8>>> = (0..clients)
        .map(|client| {
            let mut rng = asmcap_genome::rng(read_seed.wrapping_add(client as u64));
            if stride == 0 {
                sampler
                    .sample_many(&genome, per_client, read_seed.wrapping_add(client as u64))
                    .into_iter()
                    .map(|r| r.bases.to_string().into_bytes())
                    .collect()
            } else {
                (0..per_client)
                    .map(|_| {
                        let origin = (rng.gen::<u64>() as usize % n_origins) * stride;
                        sampler
                            .sample_at(&genome, origin, &mut rng)
                            .bases
                            .to_string()
                            .into_bytes()
                    })
                    .collect()
            }
        })
        .collect();

    let mut results = Vec::with_capacity(rates.len());
    for (round, &rate) in rates.iter().enumerate() {
        let result = run_once(
            &addr,
            clients,
            requests,
            rate,
            window,
            round as u64,
            &reads_per_client,
            chaos,
        )?;
        print_result(&result);
        results.push(result);
    }

    if let Some(path) = flag_value(&args, "--out") {
        std::fs::write(&path, to_json(&results))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("asmcap-loadgen: wrote {path}");
    }

    if args.iter().any(|a| a == "--shutdown") {
        let mut client = MapClient::connect(&addr).map_err(|e| format!("shutdown connect: {e}"))?;
        client
            .shutdown_server()
            .map_err(|e| format!("shutdown request: {e}"))?;
        eprintln!("asmcap-loadgen: server acknowledged shutdown");
    }
    Ok(())
}

/// How one chaos client misbehaves (drawn deterministically from the
/// chaos seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChaosMode {
    /// Well-behaved: the normal paced sender/receiver pair.
    Normal,
    /// Sends part of the stream, then a torn half-frame, then shuts the
    /// socket — the server must answer with a drop-for-cause, not a
    /// panic.
    MidFrameAbort,
    /// Sends everything but stops reading replies for a while — the
    /// server's slow-reader policy must keep the executor unblocked.
    StalledReader,
}

/// SplitMix64 finalizer for the chaos behavior draw (seeded; a chaos
/// run's misbehavior pattern reproduces).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Drives one offered-load point: `clients` connections, `requests` map
/// requests each, paced to `rate` reads/s aggregate (0 = unpaced), with
/// at most `window` requests in flight per client (0 = uncapped). With
/// `chaos` set, roughly two thirds of the clients turn hostile.
#[allow(clippy::too_many_arguments)]
fn run_once(
    addr: &str,
    clients: usize,
    requests: u64,
    rate: u64,
    window: u64,
    round: u64,
    reads_per_client: &[Vec<Vec<u8>>],
    chaos: Option<u64>,
) -> Result<RunResult, String> {
    let interval = if rate == 0 {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(clients as f64 / rate as f64)
    };
    // Pre-encode every request frame before the clock starts: the send
    // path then writes bytes verbatim, keeping encode cost off the timed
    // path (and off the core the server is sharing).
    let mut frames_per_client = Vec::with_capacity(clients);
    for client_idx in 0..clients {
        let reads = reads_per_client
            .get(client_idx)
            .ok_or("read set indexing out of range")?;
        let id_base = (round << 48) | ((client_idx as u64) << 32);
        let frames: Vec<Vec<u8>> = (0..requests)
            .map(|i| {
                let slot = usize::try_from(i).unwrap_or(usize::MAX);
                let bases = reads
                    .get(slot % reads.len().max(1))
                    .cloned()
                    .unwrap_or_default();
                Request::Map {
                    req_id: id_base | i,
                    bases,
                }
                .encode_framed()
            })
            .collect();
        frames_per_client.push(frames);
    }
    let start = perf::now();
    let mut workers = Vec::with_capacity(clients);
    for (client_idx, frames) in frames_per_client.into_iter().enumerate() {
        let addr = addr.to_string();
        let mode = match chaos {
            None => ChaosMode::Normal,
            Some(seed) => match mix(seed ^ (round << 32) ^ client_idx as u64) % 3 {
                0 => ChaosMode::Normal,
                1 => ChaosMode::MidFrameAbort,
                _ => ChaosMode::StalledReader,
            },
        };
        let handle = std::thread::Builder::new()
            .name(format!("loadgen-client-{client_idx}"))
            .spawn(move || match mode {
                ChaosMode::Normal => {
                    client_thread(&addr, client_idx as u64, requests, interval, window, frames)
                }
                hostile => chaos_client_thread(&addr, hostile, &frames),
            })
            .map_err(|e| format!("spawning client thread: {e}"))?;
        workers.push(handle);
    }
    let mut total = ClientTally::default();
    for handle in workers {
        let tally = handle
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        total.absorb(&tally);
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    Ok(RunResult {
        offered_rate: rate,
        window,
        clients,
        requests: requests * clients as u64,
        mapped: total.mapped,
        unmapped: total.unmapped,
        truncated: total.truncated,
        rejected: total.rejected,
        queue_full: total.queue_full,
        shed: total.shed,
        deadline: total.deadline,
        send_errors: total.send_errors,
        chaos_resets: total.chaos_resets,
        chaos_stalls: total.chaos_stalls,
        elapsed_s,
        latency: total.latency.summary(),
    })
}

/// What one client connection saw.
#[derive(Default)]
struct ClientTally {
    mapped: u64,
    unmapped: u64,
    truncated: u64,
    rejected: u64,
    queue_full: u64,
    shed: u64,
    deadline: u64,
    send_errors: u64,
    chaos_resets: u64,
    chaos_stalls: u64,
    latency: LatencyHistogram,
}

impl ClientTally {
    fn absorb(&mut self, other: &ClientTally) {
        self.mapped += other.mapped;
        self.unmapped += other.unmapped;
        self.truncated += other.truncated;
        self.rejected += other.rejected;
        self.queue_full += other.queue_full;
        self.shed += other.shed;
        self.deadline += other.deadline;
        self.send_errors += other.send_errors;
        self.chaos_resets += other.chaos_resets;
        self.chaos_stalls += other.chaos_stalls;
        self.latency.merge(&other.latency);
    }
}

/// One connection: a paced sender thread plus this (receiver) thread.
/// `frames` holds the client's pre-encoded request stream; request ids
/// are globally unique across rounds and clients (they are the server's
/// determinism key AND our RTT correlation key — the low 32 bits index
/// the send-timestamp table directly).
fn client_thread(
    addr: &str,
    client_idx: u64,
    requests: u64,
    interval: Duration,
    window: u64,
    frames: Vec<Vec<u8>>,
) -> Result<ClientTally, String> {
    if interval.is_zero() && window > 0 {
        // Unpaced closed loop: a single thread per client is cheaper
        // than a sender/receiver pair on a shared core.
        return closed_loop_thread(addr, requests, window, &frames);
    }
    let client = MapClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let (mut tx, mut rx) = client
        .into_split()
        .map_err(|e| format!("splitting client stream: {e}"))?;
    rx.set_read_timeout(Some(Duration::from_millis(500)))
        .map_err(|e| format!("arming receive timeout: {e}"))?;
    let slots = usize::try_from(requests).unwrap_or(usize::MAX);
    let in_flight: Arc<Mutex<Vec<Option<Instant>>>> = Arc::new(Mutex::new(vec![None; slots]));
    // Closed-loop credits: the sender spends one per request, the
    // receiver returns one per response. Zero window = open loop.
    let credits: Arc<(Mutex<u64>, Condvar)> = Arc::new((Mutex::new(window), Condvar::new()));
    // Send-side truth shared with the receiver: how many requests
    // actually went out, and whether the sender is finished. A failed
    // send is counted in `send_errors` and NEVER as a completed request
    // — the receiver only waits for replies to what was really sent.
    let sent = Arc::new(AtomicU64::new(0));
    let send_errors = Arc::new(AtomicU64::new(0));
    let sender_done = Arc::new(AtomicBool::new(false));
    let sender_failed = Arc::new(AtomicBool::new(false));

    let sender = {
        let in_flight = Arc::clone(&in_flight);
        let credits = Arc::clone(&credits);
        let sent = Arc::clone(&sent);
        let send_errors = Arc::clone(&send_errors);
        let sender_done = Arc::clone(&sender_done);
        let sender_failed = Arc::clone(&sender_failed);
        std::thread::Builder::new()
            .name(format!("loadgen-send-{client_idx}"))
            .spawn(move || -> Result<(), String> {
                // Pace in ~2ms bursts rather than per request: a sleep
                // per request is a timer wakeup per request, which on a
                // small host costs more than the requests themselves.
                let pace_burst = if interval.is_zero() {
                    u64::MAX
                } else {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    {
                        (0.002 / interval.as_secs_f64()).round().max(1.0) as u64
                    }
                };
                let mut next_send = perf::now();
                // A send/flush failure stops the sender: the unsent
                // remainder is tallied as send errors, and `sent` stays
                // the receiver's reply target.
                let mut result = Ok(());
                for i in 0..requests {
                    if !interval.is_zero() && i % pace_burst == 0 {
                        let now = perf::now();
                        if next_send > now {
                            std::thread::sleep(next_send - now);
                        }
                        next_send += interval
                            * u32::try_from(pace_burst.min(u64::from(u32::MAX)))
                                .unwrap_or(u32::MAX);
                    }
                    if window > 0 {
                        let (avail, returned) = &*credits;
                        let mut avail = avail.lock().expect("credit lock poisoned");
                        if *avail == 0 {
                            // Push buffered frames out before sleeping:
                            // their replies are the only credit source.
                            drop(avail);
                            if let Err(e) = tx.flush() {
                                result = Err(format!("send flush: {e}"));
                                // lint: relaxed-ok — summary counter, read after join
                                send_errors.fetch_add(requests - i, Ordering::Relaxed);
                                break;
                            }
                            avail = credits.0.lock().expect("credit lock poisoned");
                            while *avail == 0 {
                                avail = returned.wait(avail).expect("credit lock poisoned");
                            }
                        }
                        *avail -= 1;
                    }
                    let slot = usize::try_from(i).unwrap_or(usize::MAX);
                    let frame = frames.get(slot).ok_or("frame indexing out of range")?;
                    if let Some(entry) = in_flight
                        .lock()
                        .expect("in-flight table lock poisoned")
                        .get_mut(slot)
                    {
                        *entry = Some(perf::now());
                    }
                    if let Err(e) = tx.send_framed(frame) {
                        result = Err(format!("send: {e}"));
                        // lint: relaxed-ok — summary counter, read after join
                        send_errors.fetch_add(requests - i, Ordering::Relaxed);
                        break;
                    }
                    // lint: relaxed-ok — receiver re-reads it every poll tick
                    sent.fetch_add(1, Ordering::Relaxed);
                    // Flush at burst boundaries so frames go out on
                    // schedule, and periodically in between so no block
                    // of frames outlives the buffer.
                    if i % 64 == 63 || (!interval.is_zero() && (i + 1) % pace_burst == 0) {
                        if let Err(e) = tx.flush() {
                            result = Err(format!("send flush: {e}"));
                            // lint: relaxed-ok — summary counter, read after join
                            send_errors.fetch_add(requests - i - 1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                if result.is_ok() {
                    if let Err(e) = tx.flush() {
                        result = Err(format!("send flush: {e}"));
                    }
                }
                if result.is_err() {
                    // lint: relaxed-ok — advisory one-way flag, polled
                    sender_failed.store(true, Ordering::Relaxed);
                }
                // lint: relaxed-ok — advisory one-way flag, polled
                sender_done.store(true, Ordering::Relaxed);
                result
            })
            .map_err(|e| format!("spawning sender thread: {e}"))?
    };

    let return_credit = || {
        if window > 0 {
            let (avail, returned) = &*credits;
            *avail.lock().expect("credit lock poisoned") += 1;
            returned.notify_one();
        }
    };
    let mut tally = ClientTally::default();
    let mut received = 0u64;
    // Wait only for replies to requests that actually went out; the
    // 500 ms receive timeout turns the blocking read into a poll so the
    // exit condition is re-checked even when the stream idles.
    loop {
        // lint: relaxed-ok — `sent` only grows; a stale read just loops once more
        if sender_done.load(Ordering::Relaxed) && received >= sent.load(Ordering::Relaxed) {
            break;
        }
        match rx.recv() {
            Ok(response) => {
                return_credit();
                tally_response(
                    response,
                    &mut in_flight.lock().expect("in-flight table lock poisoned"),
                    &mut tally,
                )?;
                received += 1;
            }
            Err(WireError::Io(std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock)) => {
                // Idle poll tick. A failed sender may have lost frames in
                // its buffer — their replies will never come, so stop
                // once the stream goes quiet.
                // lint: relaxed-ok — one-way flags; a stale read retries the poll
                if sender_failed.load(Ordering::Relaxed) && sender_done.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(e) => {
                // lint: relaxed-ok — one-way flag; a stale read falls to the retry
                if sender_done.load(Ordering::Relaxed) {
                    // The tail of replies is lost with the connection;
                    // what was received still counts.
                    break;
                }
                // Give the sender a beat to notice the same breakage,
                // then fail the run loudly — a healthy-server loadgen run
                // should never lose its reply stream mid-send.
                std::thread::sleep(Duration::from_millis(50));
                // lint: relaxed-ok — one-way flag, re-checked after the grace beat
                if sender_done.load(Ordering::Relaxed) {
                    break;
                }
                return Err(format!("recv: {e}"));
            }
        }
    }
    // Unblock a sender still parked on closed-loop credits (possible if
    // the receiver broke out early), then collect its verdict.
    if window > 0 {
        let (avail, returned) = &*credits;
        *avail.lock().expect("credit lock poisoned") += requests;
        returned.notify_all();
    }
    if let Err(e) = sender
        .join()
        .map_err(|_| "sender thread panicked".to_string())?
    {
        eprintln!("asmcap-loadgen: client {client_idx} sender stopped early: {e}");
    }
    // lint: relaxed-ok — read after the sender thread is joined
    tally.send_errors += send_errors.load(Ordering::Relaxed);
    Ok(tally)
}

/// Unpaced closed-loop drive on one thread: prime `window` requests,
/// then trade blocks of replies for fresh sends, keeping the window
/// topped up until every request is answered.
fn closed_loop_thread(
    addr: &str,
    requests: u64,
    window: u64,
    frames: &[Vec<u8>],
) -> Result<ClientTally, String> {
    let client = MapClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let (mut tx, mut rx) = client
        .into_split()
        .map_err(|e| format!("splitting client stream: {e}"))?;
    let slots = usize::try_from(requests).unwrap_or(usize::MAX);
    let mut sent_at: Vec<Option<Instant>> = vec![None; slots];
    let mut tally = ClientTally::default();
    let mut next: u64 = 0;
    let mut received: u64 = 0;

    let send_one = |tx: &mut asmcap_serve::SendHalf,
                    sent_at: &mut Vec<Option<Instant>>,
                    i: u64|
     -> Result<(), String> {
        let slot = usize::try_from(i).unwrap_or(usize::MAX);
        if let Some(entry) = sent_at.get_mut(slot) {
            *entry = Some(perf::now());
        }
        let frame = frames.get(slot).ok_or("frame indexing out of range")?;
        tx.send_framed(frame).map_err(|e| format!("send: {e}"))
    };

    // A send/flush failure ends the sending side: the unsent remainder
    // becomes `send_errors` (never counted as completed), and the drain
    // below settles for the replies already owed.
    let mut send_failed = false;
    while next < window.min(requests) {
        if send_one(&mut tx, &mut sent_at, next).is_err() {
            tally.send_errors += requests - next;
            send_failed = true;
            break;
        }
        next += 1;
    }
    if !send_failed && tx.flush().is_err() {
        tally.send_errors += requests - next;
        send_failed = true;
    }

    // Trade half-window blocks: small enough to keep the server fed,
    // large enough to amortize the flush syscall.
    let block = (window / 2).clamp(1, 64);
    'drain: while received < next {
        let burst = block.min(next - received);
        for _ in 0..burst {
            match rx.recv() {
                Ok(response) => {
                    tally_response(response, &mut sent_at, &mut tally)?;
                    received += 1;
                }
                Err(e) if send_failed => {
                    // The connection died with the send side; whatever
                    // replies are missing are already accounted as send
                    // errors' counterparts.
                    let _ = e;
                    break 'drain;
                }
                Err(e) => return Err(format!("recv: {e}")),
            }
        }
        if send_failed {
            continue;
        }
        let refill = burst.min(requests - next);
        for _ in 0..refill {
            if send_one(&mut tx, &mut sent_at, next).is_err() {
                tally.send_errors += requests - next;
                send_failed = true;
                break;
            }
            next += 1;
        }
        if refill > 0 && !send_failed && tx.flush().is_err() {
            tally.send_errors += requests - next;
            send_failed = true;
        }
    }
    Ok(tally)
}

/// One hostile connection. Failures here are the point — everything is
/// best-effort and the tally records what the server managed to answer;
/// the real assertion (made by the chaos CI job) is that the server
/// neither panics nor wedges.
fn chaos_client_thread(
    addr: &str,
    mode: ChaosMode,
    frames: &[Vec<u8>],
) -> Result<ClientTally, String> {
    let mut tally = ClientTally::default();
    let Ok(client) = MapClient::connect(addr) else {
        // A refused connect under chaos load is a valid outcome.
        return Ok(tally);
    };
    let Ok((mut tx, mut rx)) = client.into_split() else {
        return Ok(tally);
    };
    let _ = rx.set_read_timeout(Some(Duration::from_millis(200)));
    match mode {
        ChaosMode::Normal => unreachable!("normal clients use client_thread"),
        ChaosMode::MidFrameAbort => {
            let half = frames.len() / 2;
            for frame in frames.iter().take(half) {
                if tx.send_framed(frame).is_err() {
                    break;
                }
            }
            // A torn frame — half the bytes of the next request — then
            // the socket slams shut. The server must classify this as a
            // truncated frame and drop the connection for cause.
            if let Some(frame) = frames.get(half) {
                // lint: index-ok — half of the frame's own length
                let _ = tx.send_framed(&frame[..frame.len() / 2]);
            }
            let _ = tx.flush();
            let _ = tx.abort();
            tally.chaos_resets = 1;
        }
        ChaosMode::StalledReader => {
            for frame in frames {
                if tx.send_framed(frame).is_err() {
                    break;
                }
            }
            let _ = tx.flush();
            let _ = tx.finish();
            tally.chaos_stalls = 1;
            // Stop reading long enough for the reply stream to back up
            // against the server's write timeout, then drain whatever
            // survives until the stream idles or dies.
            std::thread::sleep(Duration::from_millis(400));
            let mut empty: [Option<Instant>; 0] = [];
            while let Ok(response) = rx.recv() {
                let _ = tally_response(response, &mut empty, &mut tally);
            }
        }
    }
    Ok(tally)
}

/// Accounts one response against the send-timestamp table.
fn tally_response(
    response: Response,
    sent_at: &mut [Option<Instant>],
    tally: &mut ClientTally,
) -> Result<(), String> {
    let mut take = |req_id: u64| -> Option<Instant> {
        let slot = usize::try_from(req_id & 0xFFFF_FFFF).unwrap_or(usize::MAX);
        sent_at.get_mut(slot).and_then(Option::take)
    };
    match response {
        Response::Map(reply) => {
            if let Some(at) = take(reply.req_id) {
                tally
                    .latency
                    .record_us(u64::from(perf::micros_between(at, perf::now())));
            }
            match reply.status {
                asmcap_serve::WireStatus::Mapped => tally.mapped += 1,
                asmcap_serve::WireStatus::Unmapped => tally.unmapped += 1,
                asmcap_serve::WireStatus::Truncated => tally.truncated += 1,
                asmcap_serve::WireStatus::Rejected => tally.rejected += 1,
            }
        }
        Response::Overload { req_id, reason } => {
            take(req_id);
            match reason {
                OverloadReason::QueueFull => tally.queue_full += 1,
                OverloadReason::Shed => tally.shed += 1,
                OverloadReason::Deadline => tally.deadline += 1,
            }
        }
        Response::ProtocolError { code, detail } => {
            return Err(format!("server protocol error {code}: {detail}"));
        }
        Response::Stats(_) | Response::ShutdownAck | Response::Health(_) => {
            return Err("unexpected response type during load run".to_string());
        }
    }
    Ok(())
}

fn print_result(result: &RunResult) {
    let rate = if result.offered_rate == 0 {
        "unpaced".to_string()
    } else {
        format!("{}/s", result.offered_rate)
    };
    let window = if result.window == 0 {
        "open".to_string()
    } else {
        result.window.to_string()
    };
    println!(
        "offered {rate}  window {window}  clients {}  requests {}  achieved {:.0} reads/s  elapsed {:.3}s",
        result.clients,
        result.requests,
        result.achieved_rps(),
        result.elapsed_s
    );
    println!(
        "  mapped {}  unmapped {}  truncated {}  rejected {}  queue_full {}  shed {}  \
         deadline {}  send_errors {}",
        result.mapped,
        result.unmapped,
        result.truncated,
        result.rejected,
        result.queue_full,
        result.shed,
        result.deadline,
        result.send_errors
    );
    if result.chaos_resets + result.chaos_stalls > 0 {
        println!(
            "  chaos: mid-frame aborts {}  stalled readers {}",
            result.chaos_resets, result.chaos_stalls
        );
    }
    match &result.latency {
        Some(latency) => println!(
            "  latency_us  p50 {}  p90 {}  p99 {}  max {}  mean {:.0}  (n={})",
            latency.p50_us,
            latency.p90_us,
            latency.p99_us,
            latency.max_us,
            latency.mean_us,
            latency.count
        ),
        None => println!("  latency: no successful map replies"),
    }
}

/// Hand-rolled JSON (no serde in the offline workspace).
fn to_json(results: &[RunResult]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"offered_rate\": {}, ", r.offered_rate));
        out.push_str(&format!("\"window\": {}, ", r.window));
        out.push_str(&format!("\"clients\": {}, ", r.clients));
        out.push_str(&format!("\"requests\": {}, ", r.requests));
        out.push_str(&format!("\"mapped\": {}, ", r.mapped));
        out.push_str(&format!("\"unmapped\": {}, ", r.unmapped));
        out.push_str(&format!("\"truncated\": {}, ", r.truncated));
        out.push_str(&format!("\"rejected\": {}, ", r.rejected));
        out.push_str(&format!("\"queue_full\": {}, ", r.queue_full));
        out.push_str(&format!("\"shed\": {}, ", r.shed));
        out.push_str(&format!("\"deadline\": {}, ", r.deadline));
        out.push_str(&format!("\"send_errors\": {}, ", r.send_errors));
        out.push_str(&format!("\"chaos_resets\": {}, ", r.chaos_resets));
        out.push_str(&format!("\"chaos_stalls\": {}, ", r.chaos_stalls));
        out.push_str(&format!("\"elapsed_s\": {:.6}, ", r.elapsed_s));
        out.push_str(&format!("\"achieved_rps\": {:.1}", r.achieved_rps()));
        if let Some(latency) = &r.latency {
            out.push_str(&format!(
                ", \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}, \
                 \"mean\": {:.1}, \"count\": {}}}",
                latency.p50_us,
                latency.p90_us,
                latency.p99_us,
                latency.max_us,
                latency.mean_us,
                latency.count
            ));
        }
        out.push('}');
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_or<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        Some(v) => v.parse().map_err(|_| format!("bad value '{v}' for {flag}")),
        None => Ok(default),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

const HELP: &str = "\
asmcap-loadgen: open-loop load generator for asmcap_serve.

usage:
  asmcap_loadgen --addr HOST:PORT [options]

options:
  --clients N       concurrent client connections (default 8)
  --requests N      map requests per client (default 4096)
  --rate R          aggregate offered load in reads/s (default 100000;
                    0 = unpaced)
  --window W        closed-loop cap on in-flight requests per client
                    (default 0 = open loop)
  --sweep R1,R2,..  run once per offered rate (overrides --rate)
  --stride N        align read origins to the server's segmentation grid
                    (default 8; 0 = unaligned random origins)
  --ref-len N       reference length, must match the server (default 8192)
  --ref-seed N      reference seed, must match the server (default 7)
  --row-width W     read length, must match the server (default 128)
  --read-seed N     read sampling seed (default 11)
  --out PATH        write the sweep summary as JSON
  --shutdown        send a shutdown request after the last run
  --chaos           make ~2/3 of clients hostile (mid-frame aborts and
                    stalled readers) to soak the server's fault handling
  --chaos-seed N    seed for the chaos behavior draw (default 13)
";
