//! `asmcap-serve` — boot a mapping server over a generated reference.
//!
//! ```text
//! asmcap_serve [options]
//!
//! options:
//!   --addr A          listen address (default 127.0.0.1:4321; use :0 for
//!                     an ephemeral port, printed on stdout)
//!   --ref-len N       generated reference length in bases (default 8192)
//!   --ref-seed N      reference generation seed (default 7)
//!   --row-width W     CAM row width = read length (default 128)
//!   --stride S        reference segmentation stride (default 8)
//!   --threshold T     edit-distance threshold (default 6)
//!   --seed N          pipeline sensing seed (default 0)
//!   --backend B       device|pair|software (default device)
//!   --workers N       pipeline worker threads (default: auto)
//!   --no-prefilter    disable the k-mer prefilter (default: armed)
//!   --queue-cap N     admission queue depth (default 4096)
//!   --shed-at N       shed watermark (default 3/4 of the queue cap)
//!   --batch-max N     largest coalesced batch (default 256)
//!   --flush-us N      partial-batch flush timeout, microseconds (default 500)
//!   --max-conns N     concurrent connection cap (default 64)
//!   --deadline-us N   per-request queue deadline in microseconds; requests
//!                     still queued past it are answered with a Deadline
//!                     overload instead of being mapped (default 0 = off)
//!   --drain-timeout-ms N  shutdown drain bound before stragglers are
//!                     force-closed (default 10000)
//!   --fault-preset P  none|paper-corner — arm the device fault model
//!                     (default none; requires --backend device)
//!   --fault-seed N    fault-plan seed for the preset (default 0xFA17)
//!   --no-remote-shutdown  refuse client shutdown requests (default: allowed,
//!                     so the load generator / CI harness can stop the server)
//! ```
//!
//! Prints `listening on <addr>` once ready, then blocks until a remote
//! shutdown (or forever with `--no-remote-shutdown` — kill it).

use std::process::ExitCode;
use std::time::Duration;

use asmcap::{AsmcapPipeline, BackendKind, FaultPlan, PipelineConfig, PrefilterConfig};
use asmcap_genome::GenomeModel;
use asmcap_serve::{CoalescerConfig, Server, ServerConfig};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("asmcap-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return Ok(());
    }

    let mut config = PipelineConfig {
        threshold: 6,
        stride: 8,
        row_width: 128,
        prefilter: Some(PrefilterConfig::default()),
        ..PipelineConfig::default()
    };
    if let Some(t) = flag_value(&args, "--threshold") {
        config.threshold = t.parse().map_err(|_| format!("bad threshold '{t}'"))?;
    }
    if let Some(s) = flag_value(&args, "--stride") {
        config.stride = s.parse().map_err(|_| format!("bad stride '{s}'"))?;
    }
    if let Some(w) = flag_value(&args, "--row-width") {
        config.row_width = w.parse().map_err(|_| format!("bad row width '{w}'"))?;
    }
    if let Some(n) = flag_value(&args, "--seed") {
        config.seed = n.parse().map_err(|_| format!("bad seed '{n}'"))?;
    }
    if args.iter().any(|a| a == "--no-prefilter") {
        config.prefilter = None;
    }
    let backend = match flag_value(&args, "--backend") {
        Some(name) => BackendKind::parse(&name)?,
        None => BackendKind::Device,
    };
    let ref_len: usize = match flag_value(&args, "--ref-len") {
        Some(n) => n
            .parse()
            .map_err(|_| format!("bad reference length '{n}'"))?,
        None => 8_192,
    };
    let ref_seed: u64 = match flag_value(&args, "--ref-seed") {
        Some(n) => n.parse().map_err(|_| format!("bad reference seed '{n}'"))?,
        None => 7,
    };

    let fault_seed: u64 = match flag_value(&args, "--fault-seed") {
        Some(n) => n.parse().map_err(|_| format!("bad fault seed '{n}'"))?,
        None => 0xFA17,
    };
    let fault = match flag_value(&args, "--fault-preset").as_deref() {
        None | Some("none") => None,
        Some("paper-corner") => Some(FaultPlan::paper_corner(fault_seed)),
        Some(other) => return Err(format!("bad fault preset '{other}' (none|paper-corner)")),
    };

    let mut builder = AsmcapPipeline::builder()
        .reference(GenomeModel::uniform().generate(ref_len, ref_seed))
        .config(config)
        .backend(backend);
    if let Some(plan) = fault {
        builder = builder.fault(plan);
    }
    if let Some(n) = flag_value(&args, "--workers") {
        builder = builder.workers(n.parse().map_err(|_| format!("bad worker count '{n}'"))?);
    }
    let pipeline = builder.build().map_err(|e| e.to_string())?;
    if pipeline.fault_armed() {
        eprintln!(
            "asmcap-serve: fault plan armed — {} row(s) quarantined at install",
            pipeline.quarantined_rows()
        );
    }

    let queue_cap: usize = match flag_value(&args, "--queue-cap") {
        Some(n) => n.parse().map_err(|_| format!("bad queue cap '{n}'"))?,
        None => 4_096,
    };
    let shed_watermark: usize = match flag_value(&args, "--shed-at") {
        Some(n) => n.parse().map_err(|_| format!("bad shed watermark '{n}'"))?,
        None => queue_cap / 4 * 3,
    };
    let batch_max: usize = match flag_value(&args, "--batch-max") {
        Some(n) => n.parse().map_err(|_| format!("bad batch max '{n}'"))?,
        None => 256,
    };
    let flush_us: u64 = match flag_value(&args, "--flush-us") {
        Some(n) => n.parse().map_err(|_| format!("bad flush timeout '{n}'"))?,
        None => 500,
    };
    let max_connections: usize = match flag_value(&args, "--max-conns") {
        Some(n) => n.parse().map_err(|_| format!("bad connection cap '{n}'"))?,
        None => 64,
    };
    let deadline_us: u64 = match flag_value(&args, "--deadline-us") {
        Some(n) => n.parse().map_err(|_| format!("bad deadline '{n}'"))?,
        None => 0,
    };
    let drain_timeout_ms: u64 = match flag_value(&args, "--drain-timeout-ms") {
        Some(n) => n.parse().map_err(|_| format!("bad drain timeout '{n}'"))?,
        None => 10_000,
    };

    let server_config = ServerConfig {
        addr: flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:4321".to_string()),
        max_connections,
        coalescer: CoalescerConfig {
            queue_cap,
            shed_watermark,
            batch_max,
            flush_timeout: Duration::from_micros(flush_us),
            deadline: (deadline_us > 0).then(|| Duration::from_micros(deadline_us)),
        },
        write_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_millis(drain_timeout_ms),
        allow_remote_shutdown: !args.iter().any(|a| a == "--no-remote-shutdown"),
    };

    let server = Server::spawn(pipeline, server_config).map_err(|e| e.to_string())?;
    println!("listening on {}", server.local_addr());
    let counters_at_exit = server.wait();
    eprintln!(
        "asmcap-serve: done — accepted {} mapped {} unmapped {} truncated {} rejected {} \
         overloaded {} shed {} deadline_expired {} batches {} batched_reads {} \
         dropped_conns {} force_closed {}",
        counters_at_exit.accepted,
        counters_at_exit.mapped,
        counters_at_exit.unmapped,
        counters_at_exit.truncated,
        counters_at_exit.rejected,
        counters_at_exit.overloaded,
        counters_at_exit.shed,
        counters_at_exit.deadline_expired,
        counters_at_exit.batches,
        counters_at_exit.batched_reads,
        counters_at_exit.dropped_connections,
        counters_at_exit.force_closed,
    );
    Ok(())
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

const HELP: &str = "\
asmcap-serve: mapping-as-a-service over the simulated ASMCap accelerator.
Boots a pipeline over a generated reference and serves the length-prefixed
binary map protocol on TCP (see asmcap-serve's crate docs for the format).

usage:
  asmcap_serve [options]

options:
  --addr A          listen address (default 127.0.0.1:4321; :0 = ephemeral)
  --ref-len N       generated reference length in bases (default 8192)
  --ref-seed N      reference generation seed (default 7)
  --row-width W     CAM row width = read length (default 128)
  --stride S        reference segmentation stride (default 8)
  --threshold T     edit-distance threshold (default 6)
  --seed N          pipeline sensing seed (default 0)
  --backend B       device|pair|software (default device)
  --workers N       pipeline worker threads (default: auto)
  --no-prefilter    disable the k-mer prefilter (default: armed)
  --queue-cap N     admission queue depth (default 4096)
  --shed-at N       shed watermark (default 3/4 of the queue cap)
  --batch-max N     largest coalesced batch (default 256)
  --flush-us N      partial-batch flush timeout in microseconds (default 500)
  --max-conns N     concurrent connection cap (default 64)
  --deadline-us N   per-request queue deadline in microseconds (default 0 = off)
  --drain-timeout-ms N  shutdown drain bound before force-close (default 10000)
  --fault-preset P  none|paper-corner device fault model (default none)
  --fault-seed N    fault-plan seed for the preset (default 0xFA17)
  --no-remote-shutdown  refuse client shutdown requests
";
