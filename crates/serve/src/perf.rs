//! Latency/throughput measurement helpers (the crate's one
//! timing-allowed path — nothing here can reach a mapping decision).
//!
//! Used by the server for per-batch service timing and by
//! `asmcap_loadgen` to turn raw per-request round-trip samples into the
//! p50/p90/p99 summary the load sweep reports.

use std::time::{Duration, Instant};

/// A wall-clock reading. Wrapper so non-`perf` modules can take
/// timestamps through the timing-allowed path.
#[must_use]
pub fn now() -> Instant {
    Instant::now()
}

/// Microseconds between two instants, saturated into a `u32`
/// (`u32::MAX` ≈ 71 minutes — far beyond any sane request latency).
#[must_use]
pub fn micros_between(start: Instant, end: Instant) -> u32 {
    u32::try_from(end.saturating_duration_since(start).as_micros()).unwrap_or(u32::MAX)
}

/// An order-insensitive accumulator of latency samples with percentile
/// readout.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples_us: Vec<u64>,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        self.samples_us
            .push(u64::try_from(sample.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records a sample already expressed in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.samples_us.push(us);
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples_us.extend_from_slice(&other.samples_us);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples_us.len()
    }

    /// The `q`-quantile in microseconds (`q` clamped to `0.0..=1.0`) by
    /// the nearest-rank method, or `None` on an empty histogram.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.samples_us.is_empty() {
            return None;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted.get(rank - 1).copied()
    }

    /// Mean latency in microseconds, or `None` on an empty histogram.
    #[must_use]
    pub fn mean_us(&self) -> Option<f64> {
        if self.samples_us.is_empty() {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        Some(self.samples_us.iter().sum::<u64>() as f64 / self.samples_us.len() as f64)
    }

    /// The p50/p90/p99/max summary, or `None` on an empty histogram.
    #[must_use]
    pub fn summary(&self) -> Option<LatencySummary> {
        Some(LatencySummary {
            count: self.count() as u64,
            mean_us: self.mean_us()?,
            p50_us: self.quantile_us(0.50)?,
            p90_us: self.quantile_us(0.90)?,
            p99_us: self.quantile_us(0.99)?,
            max_us: self.samples_us.iter().copied().max()?,
        })
    }
}

/// The condensed percentile readout of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Samples behind the summary.
    pub count: u64,
    /// Mean, microseconds.
    pub mean_us: f64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Worst sample, microseconds.
    pub max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_follow_nearest_rank() {
        let mut h = LatencyHistogram::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record_us(us);
        }
        assert_eq!(h.quantile_us(0.50), Some(50));
        assert_eq!(h.quantile_us(0.90), Some(90));
        assert_eq!(h.quantile_us(0.99), Some(100));
        assert_eq!(h.quantile_us(0.0), Some(10));
        assert_eq!(h.quantile_us(1.0), Some(100));
        let s = h.summary().expect("non-empty");
        assert_eq!(s.count, 10);
        assert!((s.mean_us - 55.0).abs() < 1e-9);
        assert_eq!(s.max_us, 100);
    }

    #[test]
    fn empty_histogram_has_no_summary() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        assert!(h.summary().is_none());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_combines_sample_sets() {
        let mut a = LatencyHistogram::new();
        a.record_us(10);
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_micros(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.quantile_us(1.0), Some(30));
    }
}
