//! The TCP server: accept loop, per-connection readers, and the single
//! batch-executor thread that drains the [`Coalescer`] through
//! [`AsmcapPipeline::map_batch_packed_indexed`].
//!
//! # Thread model
//!
//! - **Accept thread** — polls a non-blocking listener, enforces the
//!   connection cap, and spawns one reader per connection.
//! - **Reader threads** (one per connection) — block on frame reads,
//!   decode requests, and [`Coalescer::offer`] map requests. Admission
//!   refusals are answered inline with [`Response::Overload`]; malformed
//!   frames with [`Response::ProtocolError`] followed by a close. A
//!   reader never panics on hostile input (the workspace lint polices
//!   this crate's panic surface).
//! - **Executor thread** (exactly one) — blocks in
//!   [`Coalescer::next_batch`], maps each batch in one
//!   [`AsmcapPipeline::map_batch_packed_indexed`] call (array-by-array
//!   batched sensing on the device backend), and writes each reply to its
//!   connection.
//!
//! Replies to one connection are serialized by a per-connection writer
//! mutex; a **slow reader** whose socket stays unwritable past
//! [`ServerConfig::write_timeout`] is dropped (both halves shut down) so
//! it cannot stall the executor behind a full kernel buffer.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] (or a remote [`Request::Shutdown`], when allowed)
//! stops the accept loop, shuts the **read** half of every connection
//! (readers exit at EOF, write halves stay open), then closes the
//! coalescer — the executor drains every admitted request and answers it
//! before exiting. Nothing admitted is dropped. The drain itself is
//! bounded by [`ServerConfig::drain_timeout`]: a watchdog force-closes
//! any connection still open past it (counted in
//! [`ServerCounters::force_closed`]) so a stalled peer cannot wedge
//! shutdown.

use std::collections::BTreeMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use asmcap::AsmcapPipeline;
use asmcap_genome::{DnaSeq, PackedSeq};

use crate::coalescer::{Admission, Coalescer, CoalescerConfig, Pending};
use crate::perf;
use crate::protocol::{
    error_code, error_response, read_frame, write_frame, HealthReply, MapReply, OverloadReason,
    Request, Response, ServerCounters, WireError,
};

/// Everything [`Server::spawn`] needs beyond the pipeline.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` binds an ephemeral loopback port;
    /// read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Concurrent-connection cap; further connects are answered with a
    /// [`error_code::TOO_MANY_CONNECTIONS`] protocol error and closed.
    pub max_connections: usize,
    /// Admission/batching policy (see [`CoalescerConfig`]).
    pub coalescer: CoalescerConfig,
    /// How long one reply write may block before the connection is
    /// declared a slow reader and dropped.
    pub write_timeout: Duration,
    /// Whether a client [`Request::Shutdown`] stops the server. Keep off
    /// unless the client is trusted (the loopback CI harness and the
    /// load generator use it).
    pub allow_remote_shutdown: bool,
    /// Upper bound on the drain-then-close shutdown phase. If the
    /// executor has not finished answering admitted requests within this
    /// window, every remaining connection is force-closed (counted in
    /// [`ServerCounters::force_closed`]) so shutdown cannot hang behind a
    /// stalled peer.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    /// Ephemeral loopback port, 64 connections, default coalescer, 5 s
    /// write timeout, remote shutdown off, 10 s drain bound.
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            coalescer: CoalescerConfig::default(),
            write_timeout: Duration::from_secs(5),
            allow_remote_shutdown: false,
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Lock-free counter block behind [`Server::counters`].
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    mapped: AtomicU64,
    unmapped: AtomicU64,
    truncated: AtomicU64,
    rejected: AtomicU64,
    overloaded: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    batched_reads: AtomicU64,
    dropped_connections: AtomicU64,
    deadline_expired: AtomicU64,
    force_closed: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok — monotonic stats counter
    }

    fn snapshot(&self) -> ServerCounters {
        // lint: relaxed-ok — monotonic stats counters; snapshot need not
        // be a consistent cut.
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServerCounters {
            accepted: read(&self.accepted),
            mapped: read(&self.mapped),
            unmapped: read(&self.unmapped),
            truncated: read(&self.truncated),
            rejected: read(&self.rejected),
            overloaded: read(&self.overloaded),
            shed: read(&self.shed),
            batches: read(&self.batches),
            batched_reads: read(&self.batched_reads),
            dropped_connections: read(&self.dropped_connections),
            deadline_expired: read(&self.deadline_expired),
            force_closed: read(&self.force_closed),
        }
    }
}

/// Per-connection state shared between its reader thread and the
/// executor (via the coalescer tag).
#[derive(Debug)]
struct Conn {
    /// The accepted stream; kept for half-close at shutdown.
    stream: TcpStream,
    /// Serialized reply writer (a `try_clone` of `stream` with the write
    /// timeout armed).
    writer: Mutex<TcpStream>,
    /// Set once, when the connection is dropped for cause (protocol
    /// error or slow reader).
    dropped: AtomicBool,
}

impl Conn {
    /// Writes one response frame. On any write failure the connection is
    /// dropped for cause: both halves shut down, `dropped_connections`
    /// bumped once. Returns whether the write landed.
    fn send(&self, response: &Response, counters: &Counters) -> bool {
        let payload = response.encode();
        let mut buf = Vec::with_capacity(4 + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload);
        self.send_raw(&buf, counters)
    }

    /// Writes pre-framed bytes (one or more whole frames) in a single
    /// syscall, with [`Conn::send`]'s drop-for-cause semantics.
    fn send_raw(&self, framed: &[u8], counters: &Counters) -> bool {
        use std::io::Write;
        let mut writer = self.writer.lock().expect("connection writer lock poisoned");
        match writer.write_all(framed) {
            Ok(()) => true,
            Err(_) => {
                drop(writer);
                self.drop_for_cause(counters);
                false
            }
        }
    }

    /// Shuts both socket halves and counts the drop exactly once.
    fn drop_for_cause(&self, counters: &Counters) {
        // lint: relaxed-ok — idempotence flag for a stats counter
        if !self.dropped.swap(true, Ordering::Relaxed) {
            Counters::bump(&counters.dropped_connections);
            let _ = self.stream.shutdown(Shutdown::Both);
        }
    }
}

/// State shared by every server thread.
#[derive(Debug)]
struct Shared {
    pipeline: AsmcapPipeline,
    coalescer: Coalescer<Arc<Conn>>,
    counters: Counters,
    stop: AtomicBool,
    /// Set by the executor once the coalescer is drained; the shutdown
    /// watchdog polls it to decide whether force-closing is needed.
    drained: AtomicBool,
    /// Live connections, for read-half shutdown at stop time. Weak so a
    /// finished connection frees itself.
    conns: Mutex<Vec<Weak<Conn>>>,
    allow_remote_shutdown: bool,
    drain_timeout: Duration,
    /// The drain watchdog spawned by `trigger_shutdown`, joined by
    /// `Server::join_all` so `force_closed` is final when shutdown
    /// returns.
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl Shared {
    /// Idempotent stop: end the accept loop, EOF every reader, close the
    /// coalescer so the executor drains and exits, and arm the
    /// drain-timeout watchdog that bounds that drain.
    fn trigger_shutdown(self: &Arc<Self>) {
        // lint: relaxed-ok — one-way flag; the accept loop polls it
        if self.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        let conns = self
            .conns
            .lock()
            .expect("connection registry lock poisoned");
        for conn in conns.iter().filter_map(Weak::upgrade) {
            // Read half only: queued replies still go out.
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
        drop(conns);
        self.coalescer.close();
        let shared = Arc::clone(self);
        let watchdog = std::thread::Builder::new()
            .name("asmcap-serve-drain-watchdog".to_string())
            .spawn(move || run_drain_watchdog(&shared));
        if let Ok(handle) = watchdog {
            *self.watchdog.lock().expect("watchdog lock poisoned") = Some(handle);
        }
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed) // lint: relaxed-ok — advisory poll of a one-way flag
    }

    /// The readiness/degradation snapshot a [`Request::Health`] gets.
    fn health(&self) -> HealthReply {
        HealthReply {
            ready: !self.stopping(),
            fault_armed: self.pipeline.fault_armed(),
            quarantined_rows: self.pipeline.quarantined_rows() as u64,
            queue_depth: self.coalescer.len() as u64,
            queue_cap: self.coalescer.config().queue_cap as u64,
        }
    }
}

/// Bounds the drain-then-close phase: once `drain_timeout` elapses with
/// the executor still draining, every remaining connection is shut down
/// (failing the executor's pending writes, which unblocks it) and counted
/// in `force_closed`.
fn run_drain_watchdog(shared: &Arc<Shared>) {
    // lint: timing-ok — shutdown pacing only; cannot reach a mapping
    // decision.
    let start = perf::now();
    // lint: relaxed-ok — advisory poll of a one-way flag
    while !shared.drained.load(Ordering::Relaxed) {
        if start.elapsed() >= shared.drain_timeout {
            let conns = shared
                .conns
                .lock()
                .expect("connection registry lock poisoned");
            let mut closed = 0u64;
            for conn in conns.iter().filter_map(Weak::upgrade) {
                // lint: relaxed-ok — idempotence flag for a stats counter
                if !conn.dropped.swap(true, Ordering::Relaxed) {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    Counters::bump(&shared.counters.force_closed);
                    closed += 1;
                }
            }
            drop(conns);
            if closed > 0 {
                eprintln!(
                    "asmcap-serve: shutdown drain exceeded {:?}; force-closed {closed} connection(s)",
                    shared.drain_timeout
                );
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Whether mapping `read` would scan the full reference — the expensive
/// class the shed policy refuses first. Too-short reads are "cheap"
/// (they reject without searching); too-long reads are classified by the
/// row-width prefix that would actually be searched.
fn needs_full_scan(pipeline: &AsmcapPipeline, read: &PackedSeq) -> bool {
    let width = pipeline.row_width();
    if read.len() < width {
        return false;
    }
    let Some(prefilter) = pipeline.prefilter() else {
        // No prefilter: every searched read is a full scan.
        return true;
    };
    let query = if read.len() > width {
        read.window(0..width)
    } else {
        read.clone()
    };
    prefilter.shortlist(&query).is_full_scan()
}

/// A running mapping server. Construct with [`Server::spawn`]; stop with
/// [`Server::shutdown`] (or [`Server::wait`] if a remote shutdown will
/// arrive).
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    executor: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `config.addr` and starts the accept + executor threads.
    ///
    /// # Errors
    ///
    /// I/O errors from binding or configuring the listener.
    pub fn spawn(pipeline: AsmcapPipeline, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            pipeline,
            coalescer: Coalescer::new(config.coalescer),
            counters: Counters::default(),
            stop: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            allow_remote_shutdown: config.allow_remote_shutdown,
            drain_timeout: config.drain_timeout,
            watchdog: Mutex::new(None),
        });
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let executor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("asmcap-serve-executor".to_string())
                .spawn(move || run_executor(&shared))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            let write_timeout = config.write_timeout;
            let max_connections = config.max_connections;
            std::thread::Builder::new()
                .name("asmcap-serve-accept".to_string())
                .spawn(move || {
                    run_accept(&listener, &shared, &readers, write_timeout, max_connections);
                })?
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            executor: Some(executor),
            readers,
        })
    }

    /// The bound address (useful with an ephemeral `:0` port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the aggregate counters.
    #[must_use]
    pub fn counters(&self) -> ServerCounters {
        self.shared.counters.snapshot()
    }

    /// The served pipeline's aggregated mapping statistics.
    #[must_use]
    pub fn pipeline_stats(&self) -> asmcap::PipelineStats {
        self.shared.pipeline.stats()
    }

    /// Stops the server and joins every thread. Admitted requests are
    /// drained and answered first; the queue refuses new work
    /// immediately. Returns the final counter totals.
    pub fn shutdown(mut self) -> ServerCounters {
        self.shared.trigger_shutdown();
        self.join_all();
        self.shared.counters.snapshot()
    }

    /// Blocks until the server stops **on its own** — i.e. a remote
    /// [`Request::Shutdown`] arrives (so only meaningful with
    /// [`ServerConfig::allow_remote_shutdown`]). Joins every thread and
    /// returns the final counter totals.
    pub fn wait(mut self) -> ServerCounters {
        self.join_all();
        self.shared.counters.snapshot()
    }

    fn join_all(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.executor.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.readers.lock().expect("reader registry lock poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        let watchdog = self
            .shared
            .watchdog
            .lock()
            .expect("watchdog lock poisoned")
            .take();
        if let Some(handle) = watchdog {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    /// Safety net for early returns in tests: trigger shutdown and join
    /// whatever is still running.
    fn drop(&mut self) {
        self.shared.trigger_shutdown();
        self.join_all();
    }
}

/// The accept loop: poll, cap, spawn readers.
fn run_accept(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    write_timeout: Duration,
    max_connections: usize,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let mut next_client: u64 = 0;
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // lint: relaxed-ok — approximate admission cap; an off-by-one
                // connection under a race is harmless.
                if active.load(Ordering::Relaxed) >= max_connections {
                    refuse_connection(&stream);
                    continue;
                }
                let Ok(conn) = make_conn(stream, write_timeout) else {
                    continue;
                };
                let conn = Arc::new(conn);
                shared
                    .conns
                    .lock()
                    .expect("connection registry lock poisoned")
                    .push(Arc::downgrade(&conn));
                active.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok — approximate cap
                let client = next_client;
                next_client += 1;
                let shared = Arc::clone(shared);
                let reader_active = Arc::clone(&active);
                let spawned = std::thread::Builder::new()
                    .name(format!("asmcap-serve-reader-{client}"))
                    .spawn(move || {
                        run_reader(&shared, &conn, client);
                        // lint: relaxed-ok — approximate cap
                        reader_active.fetch_sub(1, Ordering::Relaxed);
                    });
                match spawned {
                    Ok(handle) => readers
                        .lock()
                        .expect("reader registry lock poisoned")
                        .push(handle),
                    Err(_) => {
                        active.fetch_sub(1, Ordering::Relaxed); // lint: relaxed-ok — approximate cap
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Answers an over-cap connect with a typed error and closes it.
fn refuse_connection(stream: &TcpStream) {
    let response = Response::ProtocolError {
        code: error_code::TOO_MANY_CONNECTIONS,
        detail: "server connection cap reached".to_string(),
    };
    let mut writer = stream;
    let _ = write_frame(&mut writer, &response.encode());
    let _ = stream.shutdown(Shutdown::Both);
}

/// Configures the accepted stream: nodelay for small frames, a cloned
/// write half with the slow-reader timeout armed.
fn make_conn(stream: TcpStream, write_timeout: Duration) -> io::Result<Conn> {
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    writer.set_write_timeout(Some(write_timeout.max(Duration::from_millis(1))))?;
    Ok(Conn {
        stream,
        writer: Mutex::new(writer),
        dropped: AtomicBool::new(false),
    })
}

/// One connection's read loop. Exits on clean disconnect, on the first
/// protocol error (after answering it), or at server shutdown (EOF via
/// read-half shutdown).
fn run_reader(shared: &Arc<Shared>, conn: &Arc<Conn>, client: u64) {
    let mut reader = match conn.stream.try_clone() {
        Ok(stream) => std::io::BufReader::new(stream),
        Err(_) => {
            conn.drop_for_cause(&shared.counters);
            return;
        }
    };
    loop {
        match read_frame(&mut reader) {
            Ok(payload) => match Request::decode(&payload) {
                Ok(request) => {
                    if !handle_request(shared, conn, client, request) {
                        break;
                    }
                }
                Err(error) => {
                    answer_wire_error(shared, conn, &error);
                    break;
                }
            },
            Err(WireError::Disconnected) => break,
            Err(error) => {
                answer_wire_error(shared, conn, &error);
                break;
            }
        }
    }
}

/// Sends the typed response for a client-fault error (if any) and drops
/// the connection for cause.
fn answer_wire_error(shared: &Arc<Shared>, conn: &Arc<Conn>, error: &WireError) {
    if let Some(response) = error_response(error) {
        let _ = conn.send(&response, &shared.counters);
    }
    conn.drop_for_cause(&shared.counters);
}

/// Dispatches one decoded request. Returns whether the reader should
/// keep going.
fn handle_request(shared: &Arc<Shared>, conn: &Arc<Conn>, client: u64, request: Request) -> bool {
    match request {
        Request::Map { req_id, bases } => {
            let seq = DnaSeq::from_bytes(&bases).expect("protocol decode validated ACGT");
            let read = PackedSeq::from_seq(&seq);
            let pending = Pending {
                client,
                req_id,
                read: read.clone(),
                enqueued: perf::now(),
                tag: Arc::clone(conn),
            };
            let admission = shared
                .coalescer
                .offer(pending, || needs_full_scan(&shared.pipeline, &read));
            match admission {
                Admission::Enqueued => {
                    Counters::bump(&shared.counters.accepted);
                    true
                }
                Admission::QueueFull | Admission::Closed => {
                    Counters::bump(&shared.counters.overloaded);
                    conn.send(
                        &Response::Overload {
                            req_id,
                            reason: OverloadReason::QueueFull,
                        },
                        &shared.counters,
                    )
                }
                Admission::Shed => {
                    Counters::bump(&shared.counters.shed);
                    conn.send(
                        &Response::Overload {
                            req_id,
                            reason: OverloadReason::Shed,
                        },
                        &shared.counters,
                    )
                }
            }
        }
        Request::Stats => conn.send(
            &Response::Stats(shared.counters.snapshot()),
            &shared.counters,
        ),
        Request::Health => conn.send(&Response::Health(shared.health()), &shared.counters),
        Request::Shutdown => {
            if shared.allow_remote_shutdown {
                let _ = conn.send(&Response::ShutdownAck, &shared.counters);
                shared.trigger_shutdown();
                false
            } else {
                conn.send(
                    &Response::ProtocolError {
                        code: error_code::SHUTDOWN_FORBIDDEN,
                        detail: "this server does not accept remote shutdown".to_string(),
                    },
                    &shared.counters,
                )
            }
        }
    }
}

/// The executor loop: drain batches until the coalescer closes and
/// empties. Deadline-expired requests are answered with a typed overload
/// before the live batch is mapped.
fn run_executor(shared: &Arc<Shared>) {
    while let Some(drain) = shared.coalescer.next_drain() {
        for pending in &drain.expired {
            Counters::bump(&shared.counters.deadline_expired);
            let _ = pending.tag.send(
                &Response::Overload {
                    req_id: pending.req_id,
                    reason: OverloadReason::Deadline,
                },
                &shared.counters,
            );
        }
        let batch = drain.batch;
        if batch.is_empty() {
            continue;
        }
        let drain_start = perf::now();
        let reads: Vec<PackedSeq> = batch.iter().map(|p| p.read.clone()).collect();
        // The request id IS the read index: seeds derive from it, so the
        // reply to a request is independent of batching and arrival order.
        let indices: Vec<u64> = batch.iter().map(|p| p.req_id).collect();
        let records = shared.pipeline.map_batch_packed_indexed(&reads, &indices);
        let service_us = perf::micros_between(drain_start, perf::now());
        Counters::bump(&shared.counters.batches);
        shared
            .counters
            .batched_reads
            // lint: relaxed-ok — monotonic stats counter
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        // Group this batch's replies per connection and write each
        // connection's frames in one syscall — at saturation this turns
        // `batch_max` tiny writes into one write per active client.
        let mut outboxes: BTreeMap<u64, (&Arc<Conn>, Vec<u8>)> = BTreeMap::new();
        for (pending, record) in batch.iter().zip(records) {
            match record.status {
                asmcap::MapStatus::Mapped => Counters::bump(&shared.counters.mapped),
                asmcap::MapStatus::Unmapped => Counters::bump(&shared.counters.unmapped),
                asmcap::MapStatus::Truncated => Counters::bump(&shared.counters.truncated),
                asmcap::MapStatus::Rejected => Counters::bump(&shared.counters.rejected),
            }
            let reply = MapReply {
                req_id: pending.req_id,
                status: record.status.into(),
                queue_us: perf::micros_between(pending.enqueued, drain_start),
                service_us,
                cycles: record.cycles,
                searches: record.searches,
                energy_j: record.energy_j,
                positions: record.positions.iter().map(|&p| p as u64).collect(),
            };
            let payload = Response::Map(reply).encode();
            let (_, framed) = outboxes
                .entry(pending.client)
                .or_insert_with(|| (&pending.tag, Vec::new()));
            framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            framed.extend_from_slice(&payload);
        }
        for (conn, framed) in outboxes.into_values() {
            let _ = conn.send_raw(&framed, &shared.counters);
        }
    }
    // lint: relaxed-ok — one-way flag; the drain watchdog polls it
    shared.drained.store(true, Ordering::Relaxed);
}
