//! The coalescer determinism contract: per-request replies are a
//! function of (read, request id) alone. Arrival order, client
//! interleaving, batch assembly, and flush timing must not change a
//! single reply byte, because the executor keys every read's sensing
//! seed off its request id — not off the pipeline's running counter.

use std::net::TcpStream;

use asmcap::{AsmcapPipeline, BackendKind, PipelineConfig, PrefilterConfig};
use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, ReadSampler};
use asmcap_serve::{
    Admission, Coalescer, CoalescerConfig, MapClient, Pending, Request, Response, Server,
    ServerConfig,
};

const WIDTH: usize = 128;

fn test_genome() -> DnaSeq {
    GenomeModel::uniform().generate(8_192, 7)
}

fn server_config() -> ServerConfig {
    ServerConfig {
        coalescer: CoalescerConfig {
            // Tiny batches + a short flush force many assembly rounds,
            // so interleaving differences actually reshape batches.
            batch_max: 4,
            flush_timeout: std::time::Duration::from_micros(200),
            ..CoalescerConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn spawn_server() -> Server {
    let pipeline = AsmcapPipeline::builder()
        .reference(test_genome())
        .config(PipelineConfig {
            threshold: 6,
            stride: 8,
            row_width: WIDTH,
            prefilter: Some(PrefilterConfig::default()),
            ..PipelineConfig::default()
        })
        .backend(BackendKind::Device)
        .workers(2)
        .build()
        .expect("test pipeline builds");
    Server::spawn(pipeline, server_config()).expect("server spawns")
}

/// A deterministic request set: erroneous reads off the reference plus
/// foreign decoys, with fixed request ids.
fn request_set(genome: &DnaSeq) -> Vec<(u64, Vec<u8>)> {
    let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
    let mut requests: Vec<(u64, Vec<u8>)> = sampler
        .sample_many(genome, 12, 31)
        .into_iter()
        .enumerate()
        .map(|(i, read)| (5_000 + 3 * i as u64, read.bases.to_string().into_bytes()))
        .collect();
    let foreign = GenomeModel::uniform().generate(4 * WIDTH, 777);
    for i in 0..4 {
        requests.push((
            9_000 + i as u64,
            foreign
                .window(i * WIDTH..(i + 1) * WIDTH)
                .to_string()
                .into_bytes(),
        ));
    }
    requests
}

/// Canonical reply bytes for a request set sent through one client in
/// the given order, keyed by request id.
fn replies_in_order(
    addr: std::net::SocketAddr,
    requests: &[(u64, Vec<u8>)],
) -> Vec<(u64, Vec<u8>)> {
    let mut client = MapClient::connect(addr).expect("client connects");
    let mut replies = Vec::with_capacity(requests.len());
    for (req_id, bases) in requests {
        match client.map_one(*req_id, bases).expect("request answered") {
            Response::Map(reply) => {
                assert_eq!(reply.req_id, *req_id);
                replies.push((*req_id, Response::Map(reply).encode()));
            }
            other => panic!("expected a map reply, got {other:?}"),
        }
    }
    replies.sort_by_key(|(id, _)| *id);
    replies
}

/// Timing fields vary run to run; zero them so comparisons pin the
/// mapping payload (status, positions, cycles, searches, energy).
fn strip_timing(encoded: &[u8]) -> Vec<u8> {
    let mut out = encoded.to_vec();
    // Payload layout: opcode(1) req_id(8) status(1) queue_us(4) service_us(4) ...
    for byte in out.iter_mut().skip(10).take(8) {
        *byte = 0;
    }
    out
}

#[test]
fn replies_are_interleaving_independent() {
    let genome = test_genome();
    let requests = request_set(&genome);

    // Order A: one client, arrival order.
    let server_a = spawn_server();
    let addr_a = server_a.local_addr();
    let forward = replies_in_order(addr_a, &requests);
    drop(server_a);

    // Order B: one client, reverse order, against a fresh server whose
    // running counter has advanced differently (we burn some requests
    // first so any counter leakage would show).
    let server_b = spawn_server();
    let addr_b = server_b.local_addr();
    let burn: Vec<(u64, Vec<u8>)> = requests
        .iter()
        .take(3)
        .map(|(id, bases)| (id + 100_000, bases.clone()))
        .collect();
    let _ = replies_in_order(addr_b, &burn);
    let reversed: Vec<(u64, Vec<u8>)> = requests.iter().rev().cloned().collect();
    let backward = replies_in_order(addr_b, &reversed);
    drop(server_b);

    assert_eq!(forward.len(), backward.len());
    for ((id_a, bytes_a), (id_b, bytes_b)) in forward.iter().zip(&backward) {
        assert_eq!(id_a, id_b);
        assert_eq!(
            strip_timing(bytes_a),
            strip_timing(bytes_b),
            "reply for request {id_a} changed with arrival order"
        );
    }
}

#[test]
fn replies_are_client_assignment_independent() {
    let genome = test_genome();
    let requests = request_set(&genome);

    let server_a = spawn_server();
    let forward = replies_in_order(server_a.local_addr(), &requests);
    drop(server_a);

    // Same requests spread across four concurrent clients: different
    // queue assignment, different round-robin batch assembly.
    let server_b = spawn_server();
    let addr = server_b.local_addr();
    let mut handles = Vec::new();
    for chunk in requests.chunks(requests.len().div_ceil(4)) {
        let chunk = chunk.to_vec();
        handles.push(std::thread::spawn(move || replies_in_order(addr, &chunk)));
    }
    let mut scattered: Vec<(u64, Vec<u8>)> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread panicked"))
        .collect();
    scattered.sort_by_key(|(id, _)| *id);
    drop(server_b);

    assert_eq!(forward.len(), scattered.len());
    for ((id_a, bytes_a), (id_b, bytes_b)) in forward.iter().zip(&scattered) {
        assert_eq!(id_a, id_b);
        assert_eq!(
            strip_timing(bytes_a),
            strip_timing(bytes_b),
            "reply for request {id_a} changed with client assignment"
        );
    }
}

#[test]
fn batch_assembly_is_fair_and_order_preserving_per_client() {
    // Unit-level: the round-robin assembler serves one request per
    // client per round (resuming after the last-served client) and never
    // reorders requests within a client.
    let coalescer: Coalescer<u32> = Coalescer::new(CoalescerConfig {
        batch_max: 16,
        ..CoalescerConfig::default()
    });
    let genome = test_genome();
    let read = asmcap_genome::PackedSeq::from_seq(&genome.window(0..WIDTH));
    // Client 1 floods; clients 2 and 3 trickle.
    for (client, req_id) in [
        (1u64, 10u64),
        (1, 11),
        (1, 12),
        (1, 13),
        (2, 20),
        (3, 30),
        (2, 21),
    ] {
        let admission = coalescer.offer(
            Pending {
                client,
                req_id,
                read: read.clone(),
                enqueued: asmcap_serve::perf::now(),
                tag: 0u32,
            },
            || false,
        );
        assert!(matches!(admission, Admission::Enqueued));
    }
    coalescer.close();
    let batch = coalescer.next_batch().expect("one final batch");
    let order: Vec<(u64, u64)> = batch.iter().map(|p| (p.client, p.req_id)).collect();
    // Round-robin rounds: (1,2,3) then (1,2) then 1 then 1.
    assert_eq!(
        order,
        vec![
            (1, 10),
            (2, 20),
            (3, 30),
            (1, 11),
            (2, 21),
            (1, 12),
            (1, 13)
        ]
    );
    assert!(coalescer.next_batch().is_none(), "closed and drained");
}

#[test]
fn slow_reader_does_not_stall_other_clients() {
    // A client that never reads its replies must not wedge the executor:
    // its connection write half has a short timeout and gets dropped,
    // while other clients keep mapping.
    let server = spawn_server();
    let addr = server.local_addr();

    // The slow reader: sends requests, reads nothing.
    let mut slow = TcpStream::connect(addr).expect("slow client connects");
    {
        use std::io::Write as _;
        let genome = test_genome();
        let bases = genome.window(0..WIDTH).to_string().into_bytes();
        for i in 0..512u64 {
            let frame = Request::Map {
                req_id: 400_000 + i,
                bases: bases.clone(),
            }
            .encode_framed();
            if slow.write_all(&frame).is_err() {
                break; // server dropped us — that's the point
            }
        }
    }

    // A well-behaved client still gets served.
    let genome = test_genome();
    let requests = request_set(&genome);
    let replies = replies_in_order(addr, &requests[..4]);
    assert_eq!(replies.len(), 4);
    drop(slow);
    let counters = server.shutdown();
    assert!(counters.mapped + counters.unmapped >= 4);
}
