//! Wire-protocol robustness: malformed, truncated, oversized, and
//! abruptly-terminated traffic must come back as typed errors (or typed
//! error responses from a live server) — never a panic, never a wedged
//! connection, never a corrupted neighbor.

use std::io::Write as _;
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use asmcap::{AsmcapPipeline, BackendKind, PipelineConfig, PrefilterConfig};
use asmcap_genome::{DnaSeq, GenomeModel};
use asmcap_serve::{
    read_frame, MapClient, Request, Response, Server, ServerConfig, WireError, MAX_FRAME,
};

const WIDTH: usize = 128;

fn test_genome() -> DnaSeq {
    GenomeModel::uniform().generate(8_192, 7)
}

fn spawn_server() -> Server {
    let pipeline = AsmcapPipeline::builder()
        .reference(test_genome())
        .config(PipelineConfig {
            threshold: 6,
            stride: 8,
            row_width: WIDTH,
            prefilter: Some(PrefilterConfig::default()),
            ..PipelineConfig::default()
        })
        .backend(BackendKind::Device)
        .workers(2)
        .build()
        .expect("test pipeline builds");
    Server::spawn(pipeline, ServerConfig::default()).expect("server spawns")
}

/// Reads one response frame off a raw socket.
fn recv_response(stream: &mut TcpStream) -> Result<Response, WireError> {
    Response::decode(&read_frame(stream)?)
}

// ---------------------------------------------------------------- codec

#[test]
fn truncated_frames_decode_to_typed_errors() {
    // A frame cut off mid-prefix.
    let mut short_prefix: &[u8] = &[0x05, 0x00];
    assert!(matches!(
        read_frame(&mut short_prefix),
        Err(WireError::TruncatedFrame)
    ));
    // A frame cut off mid-payload.
    let mut short_payload: &[u8] = &[0x05, 0x00, 0x00, 0x00, 0x01, 0x02];
    assert!(matches!(
        read_frame(&mut short_payload),
        Err(WireError::TruncatedFrame)
    ));
    // A cleanly absent frame is a disconnect, not a truncation.
    let mut empty: &[u8] = &[];
    assert!(matches!(
        read_frame(&mut empty),
        Err(WireError::Disconnected)
    ));
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let mut huge = Vec::new();
    huge.extend_from_slice(&(u32::MAX).to_le_bytes());
    huge.extend_from_slice(&[0u8; 16]);
    let mut cursor: &[u8] = &huge;
    match read_frame(&mut cursor) {
        Err(WireError::FrameTooLarge { declared }) => {
            assert_eq!(declared as usize, u32::MAX as usize);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}

#[test]
fn garbage_payloads_decode_to_typed_errors() {
    assert!(matches!(Request::decode(&[]), Err(WireError::EmptyFrame)));
    assert!(matches!(
        Request::decode(&[0x7F]),
        Err(WireError::UnknownOpcode(0x7F))
    ));
    // Map request with a short req_id field.
    assert!(matches!(
        Request::decode(&[0x01, 1, 2, 3]),
        Err(WireError::Malformed(_))
    ));
    // Map request with a non-ACGT base.
    let mut bad = vec![0x01];
    bad.extend_from_slice(&42u64.to_le_bytes());
    bad.extend_from_slice(b"ACGZ");
    assert!(matches!(Request::decode(&bad), Err(WireError::BadBase(_))));
    // Response-side: map reply whose position count disagrees with the
    // remaining bytes.
    let mut lying = vec![0x81];
    lying.extend_from_slice(&1u64.to_le_bytes()); // req_id
    lying.push(0); // status
    lying.extend_from_slice(&0u32.to_le_bytes()); // queue_us
    lying.extend_from_slice(&0u32.to_le_bytes()); // service_us
    lying.extend_from_slice(&0u64.to_le_bytes()); // cycles
    lying.extend_from_slice(&0u64.to_le_bytes()); // searches
    lying.extend_from_slice(&0f64.to_le_bytes()); // energy_j
    lying.extend_from_slice(&5u32.to_le_bytes()); // claims 5 positions
    lying.extend_from_slice(&7u64.to_le_bytes()); // provides 1
    assert!(matches!(
        Response::decode(&lying),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn request_roundtrip_through_frames_is_lossless() {
    let requests = [
        Request::Map {
            req_id: u64::MAX,
            bases: b"ACGTACGT".to_vec(),
        },
        Request::Stats,
        Request::Shutdown,
    ];
    for request in &requests {
        let framed = request.encode_framed();
        let mut cursor: &[u8] = &framed;
        let payload = read_frame(&mut cursor).expect("framed request reads back");
        assert_eq!(&Request::decode(&payload).expect("decodes"), request);
    }
}

// ---------------------------------------------------------------- server

#[test]
fn server_answers_oversized_frames_with_a_typed_error() {
    let server = spawn_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout set");
    // Declare a frame bigger than MAX_FRAME; send nothing else.
    stream
        .write_all(&((MAX_FRAME + 1) as u32).to_le_bytes())
        .expect("prefix written");
    match recv_response(&mut stream).expect("typed response arrives") {
        Response::ProtocolError { code, .. } => {
            assert_eq!(code, asmcap_serve::error_code::FRAME_TOO_LARGE);
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    drop(stream);
    // The offender was dropped for cause; the server is still alive for
    // well-behaved clients.
    let mut client = MapClient::connect(server.local_addr()).expect("connects");
    let counters = client.stats().expect("stats still served");
    assert_eq!(counters.dropped_connections, 1);
}

#[test]
fn server_answers_garbage_opcodes_and_bad_bases_with_typed_errors() {
    let server = spawn_server();
    let addr = server.local_addr();

    // Unknown opcode.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout set");
    stream
        .write_all(&[1u8, 0, 0, 0, 0x7F])
        .expect("frame written");
    match recv_response(&mut stream).expect("typed response arrives") {
        Response::ProtocolError { code, .. } => {
            assert_eq!(code, asmcap_serve::error_code::UNKNOWN_OPCODE);
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    drop(stream);

    // Bad base in an otherwise well-formed map request.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout set");
    let mut payload = vec![0x01];
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.extend_from_slice(b"ACGTN");
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    stream.write_all(&frame).expect("frame written");
    match recv_response(&mut stream).expect("typed response arrives") {
        Response::ProtocolError { code, .. } => {
            assert_eq!(code, asmcap_serve::error_code::BAD_BASE);
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }

    // Either way, mapping still works on a fresh connection.
    let genome = test_genome();
    let mut client = MapClient::connect(addr).expect("connects");
    let response = client
        .map_one(1, genome.window(320..320 + WIDTH).to_string().as_bytes())
        .expect("map request answered");
    match response {
        Response::Map(reply) => assert!(reply.positions.contains(&320)),
        other => panic!("expected a map reply, got {other:?}"),
    }
}

#[test]
fn mid_stream_disconnects_leave_the_server_serving() {
    let server = spawn_server();
    let addr = server.local_addr();
    let genome = test_genome();
    let bases = genome.window(0..WIDTH).to_string().into_bytes();

    for _ in 0..8 {
        // Half a frame, then a hard close.
        let mut stream = TcpStream::connect(addr).expect("connects");
        let frame = Request::Map {
            req_id: 1,
            bases: bases.clone(),
        }
        .encode_framed();
        stream
            .write_all(&frame[..frame.len() / 2])
            .expect("half frame written");
        stream.shutdown(Shutdown::Both).expect("hard close");
    }
    // Requests already admitted before a disconnect are still mapped and
    // the server keeps serving everyone else.
    let mut client = MapClient::connect(addr).expect("connects");
    let response = client.map_one(99, &bases).expect("map request answered");
    assert!(matches!(response, Response::Map(_)));
}

#[test]
fn remote_shutdown_is_refused_unless_enabled() {
    let server = spawn_server(); // default: remote shutdown not allowed
    let mut client = MapClient::connect(server.local_addr()).expect("connects");
    client.send(&Request::Shutdown).expect("request sent");
    match client.recv().expect("typed response arrives") {
        Response::ProtocolError { code, .. } => {
            assert_eq!(code, asmcap_serve::error_code::SHUTDOWN_FORBIDDEN);
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    // Connection still usable afterwards.
    let counters = client.stats().expect("stats still served");
    assert_eq!(counters.batches, counters.batches); // shape check only
}

#[test]
fn zero_length_frames_get_a_typed_error() {
    let server = spawn_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout set");
    stream.write_all(&0u32.to_le_bytes()).expect("empty frame");
    match recv_response(&mut stream).expect("typed response arrives") {
        Response::ProtocolError { .. } => {}
        other => panic!("expected a protocol error, got {other:?}"),
    }
}

// ---------------------------------------------------------------- corpus

/// SplitMix64 — the corpus below must be reproducible from its seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random payload for corpus slot `i`: length 0..64,
/// bytes from the seeded stream. Slot 0 is the empty payload.
fn corpus_payload(seed: u64, i: u64) -> Vec<u8> {
    let len = (mix(seed ^ i) % 64) as usize;
    (0..len)
        .map(|j| (mix(seed ^ i ^ (j as u64) << 32) & 0xFF) as u8)
        .collect()
}

/// Codec half of the corpus: 1000 seeded random payloads through both
/// decoders. Every one must come back `Ok` or a typed [`WireError`] —
/// the assertion is simply that the call returns.
#[test]
fn random_byte_corpus_decodes_to_typed_results() {
    const SEED: u64 = 0xF0CC_ED01;
    let mut typed_errors = 0usize;
    for i in 0..1_000u64 {
        let payload = corpus_payload(SEED, i);
        if Request::decode(&payload).is_err() {
            typed_errors += 1;
        }
        let _ = Response::decode(&payload);
        // Re-framed, the same bytes must read back losslessly or fail typed.
        let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&payload);
        let mut cursor: &[u8] = &frame;
        assert_eq!(
            read_frame(&mut cursor).expect("well-framed payload reads back"),
            payload
        );
    }
    // Random bytes should almost never form a valid request; if most of
    // the corpus decoded cleanly the generator is broken, not the codec.
    assert!(
        typed_errors > 900,
        "suspicious corpus: {typed_errors} errors"
    );
}

/// Server half of the corpus: 1000 seeded random frames against a live
/// server. Every reply must be a typed response; `Map`/`Overload` replies
/// may only carry req_ids from corpus slots that really decoded as map
/// requests (never a wrong-keyed reply); a dropped connection is
/// drop-for-cause and the test reconnects. The server must still map
/// correctly afterwards.
#[test]
fn server_survives_a_random_byte_corpus() {
    const SEED: u64 = 0xF0CC_ED02;
    let server = spawn_server();
    let addr = server.local_addr();

    // The req_ids a hostile frame could legitimately be answered under.
    let mut valid_map_ids = std::collections::HashSet::new();
    let mut valid_stats = false;
    let mut valid_health = false;
    for i in 0..1_000u64 {
        match Request::decode(&corpus_payload(SEED, i)) {
            Ok(Request::Map { req_id, .. }) => {
                valid_map_ids.insert(req_id);
            }
            Ok(Request::Stats) => valid_stats = true,
            Ok(Request::Health) => valid_health = true,
            _ => {}
        }
    }

    let connect = || {
        let stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .expect("read timeout set");
        stream
    };
    let mut stream = connect();
    let mut replies = 0usize;
    let mut drops = 0usize;
    for i in 0..1_000u64 {
        let payload = corpus_payload(SEED, i);
        let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&payload);
        if stream.write_all(&frame).is_err() {
            // The server closed on us mid-send: drop-for-cause.
            drops += 1;
            stream = connect();
            continue;
        }
        // Drain whatever typed responses are ready; never block long.
        loop {
            match recv_response(&mut stream) {
                Ok(Response::ProtocolError { .. }) => replies += 1,
                Ok(Response::Map(reply)) => {
                    assert!(
                        valid_map_ids.contains(&reply.req_id),
                        "map reply keyed to never-sent req_id {}",
                        reply.req_id
                    );
                    replies += 1;
                }
                Ok(Response::Overload { req_id, .. }) => {
                    assert!(
                        valid_map_ids.contains(&req_id),
                        "overload keyed to never-sent req_id {req_id}"
                    );
                    replies += 1;
                }
                Ok(Response::Stats(_)) => {
                    assert!(valid_stats, "stats reply without a stats request");
                    replies += 1;
                }
                Ok(Response::Health(_)) => {
                    assert!(valid_health, "health reply without a health request");
                    replies += 1;
                }
                Ok(Response::ShutdownAck) => panic!("corpus must never shut the server down"),
                Err(WireError::Io(
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock,
                )) => {
                    break; // nothing more buffered — next frame
                }
                Err(_) => {
                    // Dropped for cause (or the stream is mid-garbage and
                    // the framing desynced us): start a fresh connection.
                    drops += 1;
                    stream = connect();
                    break;
                }
            }
        }
    }
    assert!(
        replies > 0,
        "server answered nothing across the whole corpus ({drops} drops)"
    );

    // After the storm: a clean connection still maps correctly.
    let genome = test_genome();
    let mut client = MapClient::connect(addr).expect("connects");
    let response = client
        .map_one(
            424_242,
            genome.window(512..512 + WIDTH).to_string().as_bytes(),
        )
        .expect("map request answered after the corpus");
    match response {
        Response::Map(reply) => {
            assert_eq!(reply.req_id, 424_242);
            assert!(reply.positions.contains(&512));
        }
        other => panic!("expected a map reply, got {other:?}"),
    }
}

#[test]
fn shutdown_drains_admitted_work_before_closing() {
    let server = spawn_server();
    let addr = server.local_addr();
    let genome = test_genome();
    let bases = genome.window(640..640 + WIDTH).to_string().into_bytes();

    // Pipeline a burst of requests, then immediately shut the server
    // down from this side. Every admitted request must still be
    // answered before the socket closes.
    let client = MapClient::connect(addr).expect("connects");
    let (mut tx, mut rx) = client.into_split().expect("splits");
    const N: u64 = 64;
    for i in 0..N {
        tx.send(&Request::Map {
            req_id: i,
            bases: bases.clone(),
        })
        .expect("request queued");
    }
    tx.finish().expect("flushed and half-closed");
    let mut answered = 0u64;
    loop {
        match rx.recv() {
            Ok(Response::Map(_)) | Ok(Response::Overload { .. }) => answered += 1,
            Ok(other) => panic!("unexpected response {other:?}"),
            Err(WireError::Disconnected) => break,
            Err(e) => panic!("wire error while draining: {e}"),
        }
        if answered == N {
            break;
        }
    }
    assert_eq!(answered, N, "admitted requests lost at shutdown");
    let counters = server.shutdown();
    assert_eq!(counters.accepted, N);
    assert_eq!(counters.mapped + counters.unmapped, N);
}
